"""Cross-subsystem invariants over a live :class:`CalliopeCluster`.

Each checker inspects one subsystem's books and returns human-readable
problem strings; the :class:`InvariantRegistry` stamps them with the
simulation time and the phase they were caught in.  Checkers come in two
patience classes:

``mid``
    One-sided safety properties that hold at *every* instant between
    event callbacks: books never go negative, pool bytes are always
    explained by pages, a group id lives on at most one running MSU.

``drain``
    Exact conservation, only meaningful once the cluster has quiesced:
    admission books equal the sum of live allocations, the multicast
    ledger balances, file systems check clean, no stream state lingers.

The registry's built-in families mirror the subsystems the prior
tentpoles added — admission, multicast ledger + subscriber accounting,
cache pin/refcount balance, failover group identity, storage
allocator/free-map consistency, per-stream delivery-deadline
accounting, edge-lane charge isolation (no double charge between an
edge serve and the MSU books), live-channel ring-window bounds plus
no-viewer-starves coverage, and recovery reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.storage.check import check_filesystem

__all__ = ["Violation", "InvariantRegistry", "builtin_registry"]

EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, caught at one instant."""

    invariant: str
    detail: str
    at: float
    phase: str  # "mid" | "drain"

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.at:10.4f}s {self.phase}] {self.invariant}: {self.detail}"


class InvariantRegistry:
    """Named checkers over a cluster, grouped by when they may run.

    A checker is any callable ``fn(cluster) -> iterable of str``; an empty
    result means the invariant holds.  ``when`` is ``"mid"``, ``"drain"``
    or ``"both"``.
    """

    def __init__(self) -> None:
        self._checkers: List[Tuple[str, Callable, str]] = []
        self.checks_run = 0

    def register(self, name: str, fn: Callable, when: str = "both") -> None:
        if when not in ("mid", "drain", "both"):
            raise ValueError(f"unknown check phase {when!r}")
        self._checkers.append((name, fn, when))

    def names(self) -> List[str]:
        return [name for name, _, _ in self._checkers]

    def check(self, cluster, phase: str = "mid") -> List[Violation]:
        """Run every checker registered for ``phase``; [] means all green."""
        violations = []
        now = cluster.sim.now
        for name, fn, when in self._checkers:
            if when != "both" and when != phase:
                continue
            self.checks_run += 1
            try:
                details = list(fn(cluster))
            except Exception as exc:
                # A crashing checker is itself a finding — report it
                # instead of aborting the remaining checks mid-run.
                details = [f"checker raised {type(exc).__name__}: {exc}"]
            for detail in details:
                violations.append(Violation(name, detail, now, phase))
        return violations


# -- 1. admission bandwidth/ledger conservation ------------------------------


def check_admission_books(cluster) -> List[str]:
    """One-sided admission safety (valid at any instant)."""
    return cluster.coordinator.admission.audit()


def _expected_charges(cluster):
    """Books implied by every live allocation the Coordinator holds."""
    coord = cluster.coordinator
    delivery: Dict[str, float] = {}
    cache: Dict[str, float] = {}
    disk_bw: Dict[Tuple[str, str], float] = {}
    streams: Dict[str, int] = {}
    active: Dict[Tuple[str, Tuple[str, str]], int] = {}

    def charge(alloc):
        delivery[alloc.msu_name] = delivery.get(alloc.msu_name, 0.0) + alloc.bandwidth
        streams[alloc.msu_name] = streams.get(alloc.msu_name, 0) + 1
        if alloc.cache_covered:
            cache[alloc.msu_name] = cache.get(alloc.msu_name, 0.0) + alloc.bandwidth
        else:
            loc = (alloc.msu_name, alloc.disk_id)
            disk_bw[loc] = disk_bw.get(loc, 0.0) + alloc.bandwidth
        if alloc.content_name:
            key = (alloc.content_name, (alloc.msu_name, alloc.disk_id))
            active[key] = active.get(key, 0) + 1

    for group in coord.groups.values():
        for alloc in group.allocations.values():
            charge(alloc)
    manager = coord.channel_manager
    if manager is not None:
        for record in manager.channels.values():
            if not record.released:
                charge(record.allocation)
    return delivery, cache, disk_bw, streams, active


def check_admission_conservation(cluster) -> List[str]:
    """Exact conservation: books == sum of live allocations (drain only).

    Mid-simulation this is deliberately *not* checked: the Coordinator
    charges admission before registering the group record (it yields for
    CPU time in between), so the books legitimately run ahead of the
    group table inside that window.
    """
    coord = cluster.coordinator
    delivery, cache, disk_bw, streams, active = _expected_charges(cluster)
    problems = []
    for state in coord.db.msus.values():
        expected = delivery.get(state.name, 0.0)
        if abs(state.delivery_used - expected) > EPS:
            problems.append(
                f"{state.name}: delivery_used {state.delivery_used} != "
                f"{expected} summed over live allocations"
            )
        expected = cache.get(state.name, 0.0)
        if abs(state.cache_used - expected) > EPS:
            problems.append(
                f"{state.name}: cache_used {state.cache_used} != {expected} "
                f"summed over live cache-covered allocations"
            )
        expected = streams.get(state.name, 0)
        if state.active_streams != expected:
            problems.append(
                f"{state.name}: active_streams {state.active_streams} != "
                f"{expected} live allocations"
            )
        for disk in state.disks.values():
            expected = disk_bw.get((state.name, disk.disk_id), 0.0)
            if abs(disk.bandwidth_used - expected) > EPS:
                problems.append(
                    f"{state.name}/{disk.disk_id}: bandwidth_used "
                    f"{disk.bandwidth_used} != {expected} summed over "
                    f"live allocations"
                )
    for entry in coord.db.contents.values():
        locations = set(entry.active)
        locations |= {loc for (name, loc) in active if name == entry.name}
        for loc in sorted(locations):
            have = entry.active.get(loc, 0)
            expected = active.get((entry.name, loc), 0)
            if have != expected:
                problems.append(
                    f"content {entry.name!r} at {loc}: active count {have} "
                    f"!= {expected} live allocations"
                )
    return problems


# -- 2./3. multicast ledger + subscriber accounting --------------------------


def check_multicast_books(cluster) -> List[str]:
    """Ledger safety plus manager/record cross-consistency (any instant)."""
    manager = cluster.coordinator.channel_manager
    if manager is None:
        return []
    problems = list(manager.ledger.audit())
    if manager.ledger.outstanding() < -EPS:
        problems.append(
            f"ledger outstanding {manager.ledger.outstanding()} < 0"
        )
    # The three coordinator-side maps must agree pairwise.
    for group_id, channel_id in manager._channel_groups.items():
        record = manager.channels.get(channel_id)
        if record is None or record.group_id != group_id:
            problems.append(
                f"channel-group {group_id} maps to channel {channel_id} "
                f"which is gone or owned by another group"
            )
    for group_id, channel_id in manager._subscriber_groups.items():
        record = manager.channels.get(channel_id)
        if record is None:
            problems.append(
                f"subscriber group {group_id} maps to dead channel "
                f"{channel_id}"
            )
        elif group_id not in record.subscribers:
            problems.append(
                f"subscriber group {group_id} missing from channel "
                f"{channel_id}'s subscriber table"
            )
    for channel_id, record in manager.channels.items():
        if manager._channel_groups.get(record.group_id) != channel_id:
            problems.append(
                f"channel {channel_id}: owner group {record.group_id} not "
                f"registered back to it"
            )
        for group_id in record.subscribers:
            if manager._subscriber_groups.get(group_id) != channel_id:
                problems.append(
                    f"channel {channel_id}: subscriber {group_id} not "
                    f"registered back to it"
                )
        entry = manager.ledger.channels.get(channel_id)
        if entry is not None and not entry.closed:
            for group_id in entry.patch_charges:
                if group_id not in record.subscribers:
                    problems.append(
                        f"channel {channel_id}: patch charged to group "
                        f"{group_id} which is not a subscriber"
                    )
    return problems


def check_multicast_drain(cluster) -> List[str]:
    """After drain the multicast books balance and nothing lingers."""
    manager = cluster.coordinator.channel_manager
    if manager is None:
        return []
    problems = []
    if not manager.ledger.balanced():
        problems.append(
            f"ledger not balanced: {manager.ledger.outstanding()} "
            f"outstanding across "
            f"{sum(1 for e in manager.ledger.channels.values() if not e.closed)}"
            f" unclosed channels"
        )
    if manager.channels:
        problems.append(
            f"{len(manager.channels)} channel records outlive the drain"
        )
    for msu in cluster.msus:
        if msu.up and msu.channels:
            problems.append(
                f"{msu.name}: {len(msu.channels)} MSU channel states "
                f"outlive the drain"
            )
    stale_groups = getattr(cluster.delivery_net, "_groups", {})
    if stale_groups:
        problems.append(
            f"delivery network still has multicast members: "
            f"{sorted(stale_groups)}"
        )
    return problems


# -- 4. cache pin/refcount balance -------------------------------------------


def check_cache_balance(cluster) -> List[str]:
    """Every MSU pool byte is explained by a retained or pinned page."""
    problems = []
    for msu in cluster.msus:
        if msu.cache is None:
            continue
        for detail in msu.cache.audit():
            problems.append(f"{msu.name}: {detail}")
    return problems


# -- 5. failover group identity ----------------------------------------------


def check_failover_groups(cluster) -> List[str]:
    """A group id lives on at most one running MSU (any instant)."""
    problems = []
    owners: Dict[int, str] = {}
    for msu in cluster.msus:
        if not msu.up:
            continue
        for group_id in msu.groups:
            if group_id in owners:
                problems.append(
                    f"group {group_id} lives on both {owners[group_id]} "
                    f"and {msu.name}"
                )
            owners[group_id] = msu.name
    monitor = getattr(cluster.coordinator, "monitor", None)
    if monitor is not None:
        problems.extend(monitor.audit())
    return problems


def check_failover_drain(cluster) -> List[str]:
    """Coordinator group records only reference schedulable MSUs."""
    coord = cluster.coordinator
    problems = []
    for group_id, record in coord.groups.items():
        state = coord.db.msus.get(record.msu_name)
        if state is None or not state.available:
            problems.append(
                f"group {group_id} assigned to unavailable MSU "
                f"{record.msu_name}"
            )
    return problems


# -- 6. storage allocator/free-map consistency -------------------------------


def check_storage(cluster) -> List[str]:
    """fsck every running MSU's file systems (drain only: a crashed MSU
    may legitimately hold an interrupted write until remount)."""
    problems = []
    config = cluster.config.ibtree_config
    for msu in cluster.msus:
        if not msu.up:
            continue
        for disk_id, fs in sorted(msu.filesystems.items()):
            report = check_filesystem(fs, config)
            for error in report.errors:
                problems.append(f"{msu.name}/{disk_id}: {error}")
    return problems


def check_allocator_bounds(cluster) -> List[str]:
    """Cheap allocator sanity that holds at any instant."""
    problems = []
    for msu in cluster.msus:
        for disk_id, fs in sorted(msu.filesystems.items()):
            allocator = fs.allocator
            used = allocator.used_blocks
            free = allocator.free_blocks
            reserved = allocator.reserved_blocks
            if free < 0 or reserved < 0:
                problems.append(
                    f"{msu.name}/{disk_id}: negative allocator counter "
                    f"(free={free} reserved={reserved})"
                )
            marked = sum(allocator._bitmap)
            if used != marked:
                problems.append(
                    f"{msu.name}/{disk_id}: used counter {used} != "
                    f"{marked} blocks marked in the bitmap"
                )
    return problems


# -- 7. per-stream delivery-deadline accounting ------------------------------


def check_stream_accounting(cluster) -> List[str]:
    """Every live stream's schedule accounting is sane (any instant)."""
    problems = []
    for msu in cluster.msus:
        if not msu.up:
            continue
        known = {
            stream.stream_id
            for group in msu.groups.values()
            for stream in group.play_streams
        }
        known |= {ch.stream.stream_id for ch in msu.channels.values()}
        for stream in msu.iop.play_streams:
            if not 0 <= stream.next_page <= stream.handle.nblocks:
                problems.append(
                    f"{msu.name}: stream {stream.stream_id} next_page "
                    f"{stream.next_page} outside [0, {stream.handle.nblocks}]"
                )
            if stream.position_us < 0:
                problems.append(
                    f"{msu.name}: stream {stream.stream_id} position "
                    f"{stream.position_us}us < 0"
                )
            if stream.stream_id not in known:
                problems.append(
                    f"{msu.name}: orphan stream {stream.stream_id} in the "
                    f"IOP with no owning group or channel"
                )
        problems.extend(
            f"{msu.name}: {detail}" for detail in msu.iop.collector.audit()
        )
    return problems


def check_streams_drained(cluster) -> List[str]:
    """After drain no stream or group state may linger on a running MSU."""
    problems = []
    for msu in cluster.msus:
        if not msu.up:
            continue
        if msu.iop.play_streams:
            problems.append(
                f"{msu.name}: {len(msu.iop.play_streams)} play streams "
                f"outlive the drain"
            )
        if msu.iop.record_streams:
            problems.append(
                f"{msu.name}: {len(msu.iop.record_streams)} record streams "
                f"outlive the drain"
            )
        if msu.groups:
            problems.append(
                f"{msu.name}: groups {sorted(msu.groups)} outlive the drain"
            )
    return problems


# -- 8. edge proxy tier -------------------------------------------------------


def check_edge_books(cluster) -> List[str]:
    """Edge-lane charge isolation (any instant).

    The zero-disk-cost lane promises an edge-served stream never lands
    on an MSU book: no group or channel allocation may carry an edge
    name, every registered edge serve must hold an edge-lane allocation,
    and an edge-covered patch group must not *also* hold a multicast
    ledger patch charge or a per-stream MSU allocation — the
    no-double-charge property.
    """
    coord = cluster.coordinator
    problems = []
    for group in coord.groups.values():
        for stream_id, alloc in group.allocations.items():
            if alloc.edge_name:
                problems.append(
                    f"group {group.group_id}/{stream_id}: edge-lane "
                    f"allocation ({alloc.edge_name}) sits on the MSU books"
                )
    manager = coord.channel_manager
    if manager is not None:
        for channel_id, record in manager.channels.items():
            if record.allocation.edge_name:
                problems.append(
                    f"channel {channel_id}: edge-lane allocation "
                    f"({record.allocation.edge_name}) backs an MSU channel"
                )
    placement = getattr(coord, "placement", None)
    if placement is None:
        return problems
    patch_charged = set()
    if manager is not None:
        for entry in manager.ledger.channels.values():
            patch_charged |= set(entry.patch_charges)
    settled = not getattr(coord, "recovering", False) and not getattr(
        coord, "dead", False
    )
    for (group_id, stream_id), serve in placement.serves.items():
        alloc = serve.allocation
        if alloc is None or not alloc.edge_name:
            problems.append(
                f"edge serve {group_id}/{stream_id}: allocation is not "
                f"edge-lane"
            )
        if serve.kind == "patch" and group_id in patch_charged:
            problems.append(
                f"edge serve {group_id}/{stream_id}: patch also charged "
                f"in the multicast ledger (double charge)"
            )
        # A serve held for an edge that is not attached is a charge with
        # no one left to complete or refund it — the stale-serve shape a
        # restart can replay.  (An MSU allocation coexisting with a patch
        # serve is legitimate: failover may migrate the subscriber to a
        # direct stream while the edge still fills in the missed prefix.)
        # During an outage the books are frozen with the dead process,
        # and during recovery the grace window legitimately holds
        # replayed serves until edges re-hello or reconcile_edges
        # refunds them — skip the staleness check in both states.
        view = placement.edges.get(serve.edge_name)
        if settled and (view is None or not view.attached):
            problems.append(
                f"edge serve {group_id}/{stream_id}: held for detached "
                f"edge {serve.edge_name} (stale charge)"
            )
    return problems


def check_edge_cache_balance(cluster) -> List[str]:
    """Every edge pool byte is explained by a pinned prefix page."""
    problems = []
    for proxy in getattr(cluster, "edges", []):
        pinned = proxy.prefix.pinned_bytes()
        if proxy.pool.used != pinned:
            problems.append(
                f"{proxy.name}: pool holds {proxy.pool.used} bytes but "
                f"pinned pages explain {pinned}"
            )
    return problems


def check_edge_drain(cluster) -> List[str]:
    """After drain no edge serve lingers, the uplink books read zero,
    and the Coordinator's pin map matches each live proxy's cache."""
    coord = cluster.coordinator
    placement = getattr(coord, "placement", None)
    if placement is None:
        return []
    problems = []
    if placement.serves:
        problems.append(
            f"{len(placement.serves)} edge serves outlive the drain: "
            f"{sorted(placement.serves)}"
        )
    proxies = {proxy.name: proxy for proxy in getattr(cluster, "edges", [])}
    for name in sorted(placement.edges):
        view = placement.edges[name]
        if abs(view.uplink_used) > EPS:
            problems.append(
                f"{name}: uplink_used {view.uplink_used} != 0 after drain"
            )
        proxy = proxies.get(name)
        if proxy is None or proxy.down or not view.attached:
            continue
        have = proxy.pinned_titles()
        if dict(view.pinned) != have:
            problems.append(
                f"{name}: coordinator pin map "
                f"{sorted(view.pinned.items())} != proxy cache "
                f"{sorted(have.items())}"
            )
    return problems


# -- 9. live channels and time-shift rings -----------------------------------


def check_live_ring_bounds(cluster) -> List[str]:
    """Ring-window bounds (any instant).

    The reclaim path may only trim pages that are both outside the
    configured window *and* behind every active reader: the resident
    span never drops below ``ring_blocks`` while the file is longer
    than the window, a keep-everything (DVR) channel is never trimmed
    at all, and no reader is ever left positioned on a reclaimed page.
    """
    problems = []
    for msu in cluster.msus:
        if not msu.up:
            continue
        for live in msu.live.values():
            handle = live.handle
            if live.ring_blocks <= 0:
                if handle.trimmed:
                    problems.append(
                        f"{msu.name}: DVR channel {live.channel_id} trimmed "
                        f"{handle.trimmed} pages of a keep-everything file"
                    )
                continue
            floor = max(0, handle.nblocks - live.ring_blocks)
            if handle.trimmed > floor:
                problems.append(
                    f"{msu.name}: channel {live.channel_id} trimmed to "
                    f"{handle.trimmed}, past the window floor {floor} "
                    f"(span {handle.live_span} < ring {live.ring_blocks})"
                )
            for stream in msu.iop.play_streams:
                if stream.handle is handle and stream.next_page < handle.trimmed:
                    problems.append(
                        f"{msu.name}: channel {live.channel_id} reclaimed "
                        f"page {stream.next_page} under reader "
                        f"{stream.stream_id} (trimmed to {handle.trimmed})"
                    )
    return problems


def check_live_viewers(cluster) -> List[str]:
    """No live viewer starves (any instant).

    Every subscriber of an on-air channel must be joined to its
    multicast group (or fan-out packets never reach them), the fan-out
    stream itself must still be pacing in the IOP, and the disk process
    feeding it must be alive — a dead disk process starves every viewer
    silently.  Coordinator-side, the live manager's maps must agree
    pairwise, like the multicast manager's.
    """
    problems = []
    groups = getattr(cluster.delivery_net, "_groups", {})
    for msu in cluster.msus:
        if not msu.up:
            continue
        for ch in msu.channels.values():
            if not ch.stream.live:
                continue
            if ch.stream not in msu.iop.play_streams:
                problems.append(
                    f"{msu.name}: live channel {ch.channel_id} fan-out "
                    f"stream {ch.stream.stream_id} missing from the IOP"
                )
            members = groups.get(ch.mcast_host, set())
            for group_id in sorted(ch.subscribers):
                _, address = ch.subscribers[group_id]
                if tuple(address) not in members:
                    problems.append(
                        f"{msu.name}: live channel {ch.channel_id} "
                        f"subscriber {group_id} at {address} is not in "
                        f"multicast group {ch.mcast_host}"
                    )
        if msu.live:
            for disk_id in sorted(msu.disk_processes):
                proc = msu.disk_processes[disk_id]
                if not proc._proc.is_alive:
                    problems.append(
                        f"{msu.name}/{disk_id}: disk process dead under "
                        f"{len(msu.live)} live channel(s)"
                    )
    manager = getattr(cluster.coordinator, "live_manager", None)
    if manager is None:
        return problems
    for group_id, channel_id in manager._channel_groups.items():
        record = manager.channels.get(channel_id)
        if record is None or record.group_id != group_id:
            problems.append(
                f"live fan-out group {group_id} maps to channel "
                f"{channel_id} which is gone or owned by another group"
            )
    for group_id, channel_id in manager._subscriber_groups.items():
        record = manager.channels.get(channel_id)
        if record is None or group_id not in record.subscribers:
            problems.append(
                f"live subscriber group {group_id} maps to channel "
                f"{channel_id} which is gone or does not list it"
            )
    for channel_id, record in manager.channels.items():
        if manager._channel_groups.get(record.group_id) != channel_id:
            problems.append(
                f"live channel {channel_id}: owner group {record.group_id} "
                f"not registered back to it"
            )
        if manager._by_name.get(record.content_name) != channel_id:
            problems.append(
                f"live channel {channel_id}: name {record.content_name!r} "
                f"not registered back to it"
            )
        for group_id in record.subscribers:
            if manager._subscriber_groups.get(group_id) != channel_id:
                problems.append(
                    f"live channel {channel_id}: subscriber {group_id} not "
                    f"registered back to it"
                )
    return problems


def check_live_drain(cluster) -> List[str]:
    """After drain every live channel is off the air everywhere."""
    problems = []
    manager = getattr(cluster.coordinator, "live_manager", None)
    if manager is not None:
        if manager.channels:
            problems.append(
                f"{len(manager.channels)} live channel records outlive "
                f"the drain: {sorted(manager.channels)}"
            )
        for name, table in (
            ("fan-out", manager._channel_groups),
            ("ingest", manager._ingest_groups),
            ("subscriber", manager._subscriber_groups),
        ):
            if table:
                problems.append(
                    f"live {name} groups outlive the drain: {sorted(table)}"
                )
    for msu in cluster.msus:
        if msu.up and msu.live:
            problems.append(
                f"{msu.name}: {len(msu.live)} live channel states outlive "
                f"the drain"
            )
    return problems


# -- 10. coordinator recovery reconciliation ----------------------------------


def check_recovery_reconciliation(cluster) -> List[str]:
    """The Coordinator's tables match what every live MSU is serving.

    The same correspondence a fresh ``reconcile`` would compute: every
    charged coordinator stream is served by its MSU, every served MSU
    stream is known to the Coordinator, channel records and subscriber
    sets match, a coordinator-claimed prefix pin exists MSU-side, and
    the books equal a from-scratch rebuild.  Trivially green without a
    recovery; after one it is exactly the state a restart must restore.
    """
    from repro.recovery import books_state, expected_books

    coord = cluster.coordinator
    if getattr(coord, "dead", False):
        return ["coordinator left dead at drain"]
    if getattr(coord, "recovering", False):
        return ["coordinator still reconciling at drain"]
    problems = []
    manager = coord.channel_manager
    for msu in cluster.msus:
        if not msu.up or msu.coordinator_channel is None:
            continue
        report = msu.state_report()
        served = {(gid, sid) for gid, sid, *_ in report.streams}
        subscribed = set()
        reported_channels = {}
        for cid, gid, sid, content, disk, pairs in report.channels:
            reported_channels[cid] = {tuple(p) for p in pairs}
            subscribed |= reported_channels[cid]
        charged = set()
        for group in coord.groups.values():
            if group.msu_name != msu.name:
                continue
            for stream_id in set(group.allocations) | set(group.recordings):
                charged.add((group.group_id, stream_id))
        for key in sorted(charged - served - subscribed):
            problems.append(
                f"{msu.name}: coordinator charges stream {key[0]}/{key[1]} "
                f"the MSU is not serving"
            )
        known = set(charged)
        for group in coord.groups.values():
            if group.msu_name == msu.name:
                known |= {(group.group_id, s) for s in group.streams}
        for key in sorted(served - known):
            problems.append(
                f"{msu.name}: serves stream {key[0]}/{key[1]} the "
                f"coordinator has no record of"
            )
        if manager is not None:
            coord_channels = {
                cid: set(rec.subscribers.items())
                for cid, rec in manager.channels.items()
                if rec.msu_name == msu.name
            }
            for cid in sorted(set(coord_channels) ^ set(reported_channels)):
                where = "coordinator" if cid in coord_channels else "MSU"
                problems.append(
                    f"{msu.name}: channel {cid} exists only {where}-side"
                )
            for cid in sorted(set(coord_channels) & set(reported_channels)):
                if coord_channels[cid] != reported_channels[cid]:
                    problems.append(
                        f"{msu.name}: channel {cid} subscriber sets differ "
                        f"(coordinator {sorted(coord_channels[cid])} vs "
                        f"MSU {sorted(reported_channels[cid])})"
                    )
        pinned = {
            (disk_id, content) for disk_id, content, pages in report.pins
            if pages > 0
        }
        for entry in coord.db.contents.values():
            if entry.msu_name != msu.name or not entry.prefix_pinned:
                continue
            if (entry.disk_id, entry.name) not in pinned:
                problems.append(
                    f"{msu.name}: coordinator claims {entry.name!r} prefix "
                    f"pinned; cache has no pages"
                )
    # Live charge/release interleaving accrues float dust the
    # deterministic rebuild order does not, hence EPS (not ==).
    have, want = books_state(coord), expected_books(coord)
    for name in sorted(set(have["msus"]) | set(want["msus"])):
        h = have["msus"].get(name, {})
        w = want["msus"].get(name, {})
        close = (
            abs(h.get("delivery_used", 0.0) - w.get("delivery_used", 0.0)) <= EPS
            and abs(h.get("cache_used", 0.0) - w.get("cache_used", 0.0)) <= EPS
            and h.get("active_streams", 0) == w.get("active_streams", 0)
            and set(h.get("disks", {})) == set(w.get("disks", {}))
            and all(
                abs(bw - w["disks"][d]) <= EPS
                for d, bw in h.get("disks", {}).items()
            )
        )
        if not close:
            problems.append(
                f"books for {name} diverge from a from-scratch rebuild: "
                f"{h} != {w}"
            )
    if have["active"] != want["active"]:
        problems.append(
            "active-reader counts diverge from a from-scratch rebuild: "
            f"{have['active']} != {want['active']}"
        )
    return problems


# -- 9. coordinator scale-out (repro.scaleout) -------------------------------


def check_scaleout_escrow(cluster) -> List[str]:
    """The escrow split is an exact decomposition of the disk books.

    Valid at any instant: the per-shard one-sided safety checks
    (``ShardSet.audit``: bank never over-granted, no negative slices,
    overdraft only under genuine exhaustion) plus exact cross-shard
    conservation — for every disk with an escrow book,
    ``sum(spent) == disk.bandwidth_used``.  A double-spent admission or
    a charge that escaped shard attribution breaks the equality
    immediately.
    """
    coord = cluster.coordinator
    shards = coord.shards
    if shards is None:
        return []
    problems = list(shards.audit())
    for (msu_name, disk_id), book in sorted(shards.books.items()):
        state = coord.db.msus.get(msu_name)
        disk = state.disks.get(disk_id) if state is not None else None
        if disk is None:
            continue
        total = sum(book.spent)
        if abs(total - disk.bandwidth_used) > EPS:
            problems.append(
                f"{msu_name}/{disk_id}: shard spends sum to {total}, "
                f"central book says {disk.bandwidth_used}"
            )
    return problems


def check_takeover_latency(cluster) -> List[str]:
    """Every standby takeover landed within one report_grace window.

    The headline promise of the warm standby: leader loss to restored
    admission service in at most ``report_grace`` seconds — the window
    a *cold* restart only begins its ReportState collection in.
    """
    problems = []
    config = getattr(cluster, "config", None)
    recovery = getattr(config, "recovery", None)
    grace = recovery.report_grace if recovery is not None else 1.0
    for outcome in getattr(cluster, "takeovers", ()):
        if outcome.takeover_latency > grace + EPS:
            problems.append(
                f"takeover at t={outcome.completed_at:.3f} took "
                f"{outcome.takeover_latency:.3f}s from leader loss "
                f"(> report_grace {grace})"
            )
        if outcome.detected_at < outcome.leader_lost_at - EPS:
            problems.append(
                f"takeover at t={outcome.completed_at:.3f} detected the "
                f"leader dead at {outcome.detected_at:.3f}, before it "
                f"was lost at {outcome.leader_lost_at:.3f}"
            )
    return problems


def builtin_registry() -> InvariantRegistry:
    """The built-in invariant families, one per subsystem."""
    registry = InvariantRegistry()
    registry.register("admission-books", check_admission_books, "both")
    registry.register(
        "admission-conservation", check_admission_conservation, "drain"
    )
    registry.register("multicast-ledger", check_multicast_books, "both")
    registry.register("multicast-drain", check_multicast_drain, "drain")
    registry.register("cache-balance", check_cache_balance, "both")
    registry.register("failover-groups", check_failover_groups, "both")
    registry.register("failover-placement", check_failover_drain, "drain")
    registry.register("storage-bounds", check_allocator_bounds, "both")
    registry.register("storage-fsck", check_storage, "drain")
    registry.register("stream-deadlines", check_stream_accounting, "both")
    registry.register("stream-drain", check_streams_drained, "drain")
    registry.register("edge-books", check_edge_books, "both")
    registry.register("edge-cache-balance", check_edge_cache_balance, "both")
    registry.register("edge-drain", check_edge_drain, "drain")
    registry.register("live-ring-bounds", check_live_ring_bounds, "both")
    registry.register("live-viewers", check_live_viewers, "both")
    registry.register("live-drain", check_live_drain, "drain")
    registry.register(
        "recovery-reconciliation", check_recovery_reconciliation, "drain"
    )
    registry.register("scaleout-escrow", check_scaleout_escrow, "both")
    registry.register("scaleout-takeover", check_takeover_latency, "drain")
    return registry
