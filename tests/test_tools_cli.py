"""The experiment CLI."""

import pytest

from repro.tools.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_is_a_choice(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-drive"])

    def test_duration_flag(self):
        args = build_parser().parse_args(["table1", "--duration", "5"])
        assert args.duration == 5.0


class TestMain:
    def test_list_prints_descriptions(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_runs_fast_experiment(self, capsys):
        assert main(["memorypath", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "theoretical" in out and "7.50" in out

    def test_runs_scalability(self, capsys):
        assert main(["scalability"]) == 0
        out = capsys.readouterr().out
        assert "Coordinator CPU" in out


class TestEdgeSubcommand:
    def test_edge_cache_is_an_experiment_choice(self):
        assert "edge-cache" in EXPERIMENTS
        args = build_parser().parse_args(["edge-cache"])
        assert args.experiment == "edge-cache"

    def test_edge_reports_pins_and_hit_ratio(self, capsys):
        assert main(["edge", "--edges", "1", "--duration", "10",
                     "--titles", "3"]) == 0
        out = capsys.readouterr().out
        assert "edge0" in out
        assert "pinned bytes" in out
        assert "serve hit ratio" in out
        assert "placement loop" in out
        # The Zipf head gets pinned within a 10s window.
        assert "title0" in out


class TestLiveSubcommand:
    def test_live_tv_is_an_experiment_choice(self):
        assert "live-tv" in EXPERIMENTS
        args = build_parser().parse_args(["live-tv"])
        assert args.experiment == "live-tv"

    def test_live_parser_defaults(self):
        from repro.tools.cli import build_live_parser

        args = build_live_parser().parse_args([])
        assert args.channels == 3
        assert args.surfers == 55
        assert args.ring == 5.0
        assert args.chaos_seeds == "61..63"

    def test_live_reports_surf_run(self, capsys):
        assert main(["live", "--channels", "2", "--surfers", "8",
                     "--duration", "10", "--chaos-seeds", ""]) == 0
        out = capsys.readouterr().out
        assert "2 channels ingesting" in out
        assert "viewers/disk" in out
        assert "rewinds" in out
        assert "channels opened 2 / closed 2" in out
        assert "drain violations 0" in out

    def test_live_chaos_sweep_reports_verdicts(self, capsys):
        assert main(["live", "--channels", "2", "--surfers", "6",
                     "--duration", "8", "--chaos-seeds", "61"]) == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "1/1 seeds with zero violations" in out
