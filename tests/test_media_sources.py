"""NV and VAT traffic generators: the Graph 2 workload properties."""

import numpy as np
import pytest

from repro.media import NvEncoder, VatEncoder
from repro.media.nv import window_peak_rate
from repro.units import kbit_per_s


class TestNv:
    @pytest.mark.parametrize("avg_kbit", [650.0, 635.0, 877.0])
    def test_average_rate_calibrated(self, avg_kbit):
        encoder = NvEncoder(avg_rate=kbit_per_s(avg_kbit), seed=int(avg_kbit))
        packets = encoder.packets(60.0)
        measured = encoder.mean_rate(packets)
        assert measured == pytest.approx(kbit_per_s(avg_kbit), rel=0.06)

    @pytest.mark.parametrize("avg_kbit", [650.0, 635.0, 877.0])
    def test_50ms_peaks_in_paper_range(self, avg_kbit):
        """§3.2.2: peaks of 2.0 to 5.4 Mbit/s over a 50 ms window."""
        encoder = NvEncoder(avg_rate=kbit_per_s(avg_kbit), seed=int(avg_kbit))
        peak_mbit = window_peak_rate(encoder.packets(60.0)) * 8 / 1e6
        assert 2.0 <= peak_mbit <= 5.5

    def test_packets_about_one_kilobyte(self):
        """§3.2.2: "most of the packets in the streams are about one
        KByte long"."""
        packets = NvEncoder(seed=1).packets(30.0)
        sizes = [len(p.payload) for p in packets]
        full = sum(1 for s in sizes if s == 1024)
        assert full / len(sizes) > 0.6
        assert max(sizes) <= 1024

    def test_frames_burst_back_to_back(self):
        encoder = NvEncoder(seed=2)
        packets = encoder.packets(5.0)
        gaps = np.diff([p.delivery_us for p in packets])
        # Within a burst the gap is the tiny wire pacing; between frames
        # it is the frame interval.
        assert (gaps == encoder.burst_gap_us).sum() > len(gaps) * 0.3

    def test_schedule_monotone(self):
        packets = NvEncoder(seed=3).packets(10.0)
        times = [p.delivery_us for p in packets]
        assert times == sorted(times)

    def test_deterministic(self):
        a = NvEncoder(seed=5).packets(3.0)
        b = NvEncoder(seed=5).packets(3.0)
        assert a == b

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            NvEncoder(avg_rate=0)


class TestVat:
    def test_frame_spacing_is_20ms(self):
        packets = VatEncoder(seed=1).packets(10.0)
        gaps = np.diff([p.delivery_us for p in packets])
        assert all(g % VatEncoder.FRAME_US == 0 for g in gaps)

    def test_payload_is_160_bytes(self):
        packets = VatEncoder(seed=2).packets(5.0)
        assert all(len(p.payload) == VatEncoder.FRAME_BYTES for p in packets)

    def test_silence_suppression_creates_gaps(self):
        packets = VatEncoder(seed=3).packets(60.0)
        gaps = np.diff([p.delivery_us for p in packets])
        assert (gaps > VatEncoder.FRAME_US).any()

    def test_rate_below_continuous_pcm(self):
        packets = VatEncoder(seed=4).packets(60.0)
        total = sum(len(p.payload) for p in packets)
        assert total < 8000 * 60  # silence removed

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            VatEncoder(talk_spurt_s=0)
