"""Wire loss modeling and the client-side RTP sequence tracker."""

import pytest

from repro.clients.rtp_receiver import RtpReceiverStats
from repro.errors import ProtocolError
from repro.net import Host, Network, RtpHeader
from repro.sim import Simulator
from tests.conftest import run_process


def packet(seq, payload=b"v"):
    return RtpHeader(28, seq, seq * 3000, 1).pack() + payload


class TestNetworkLoss:
    def test_loss_rate_validated(self, sim):
        with pytest.raises(ProtocolError):
            Network(sim, loss_rate=1.0)
        with pytest.raises(ProtocolError):
            Network(sim, loss_rate=-0.1)

    def test_no_loss_by_default(self, sim):
        net = Network(sim, latency=0.001)
        a, b = Host(sim, net, "a"), Host(sim, net, "b")
        sa, sb = a.bind(1), b.bind(2)

        def send_all():
            for i in range(100):
                yield from sa.send(("b", 2), packet(i))

        run_process(sim, send_all())
        sim.run()
        assert sb.received == 100
        assert net.datagrams_lost == 0

    def test_lossy_wire_drops_close_to_rate(self, sim):
        net = Network(sim, latency=0.001, loss_rate=0.2, seed=7)
        a, b = Host(sim, net, "a"), Host(sim, net, "b")
        sa, sb = a.bind(1), b.bind(2)

        def send_all():
            for i in range(1000):
                yield from sa.send(("b", 2), packet(i))

        run_process(sim, send_all())
        sim.run()
        assert net.datagrams_lost + sb.received == 1000
        assert net.datagrams_lost / 1000 == pytest.approx(0.2, abs=0.05)


class TestRtpReceiverStats:
    def test_clean_sequence_no_loss(self):
        stats = RtpReceiverStats()
        for i in range(50):
            stats.feed(packet(i))
        assert stats.received == 50
        assert stats.lost == 0
        assert stats.expected == 50
        assert stats.loss_fraction == 0.0

    def test_gap_counts_lost(self):
        stats = RtpReceiverStats()
        for i in [0, 1, 2, 6, 7]:
            stats.feed(packet(i))
        assert stats.lost == 3
        assert stats.expected == 8
        assert stats.loss_fraction == pytest.approx(3 / 8)

    def test_reorder_recovers_presumed_loss(self):
        stats = RtpReceiverStats()
        for i in [0, 2, 1, 3]:
            stats.feed(packet(i))
        assert stats.lost == 0
        assert stats.reordered == 1

    def test_duplicate_counted(self):
        stats = RtpReceiverStats()
        stats.feed(packet(0))
        stats.feed(packet(0))
        assert stats.duplicates == 1
        assert stats.received == 2

    def test_sequence_wrap_handled(self):
        stats = RtpReceiverStats()
        for seq in [65534, 65535, 0, 1]:
            stats.feed(packet(seq))
        assert stats.lost == 0
        assert stats.expected == 4

    def test_non_rtp_counted_separately(self):
        stats = RtpReceiverStats()
        assert stats.feed(b"xx") is None
        assert stats.not_rtp == 1
        assert stats.received == 0

    def test_end_to_end_over_lossy_wire(self, sim):
        net = Network(sim, latency=0.001, loss_rate=0.1, seed=11)
        a, b = Host(sim, net, "a"), Host(sim, net, "b")
        sa, sb = a.bind(1), b.bind(2)
        stats = RtpReceiverStats()

        def receiver():
            while True:
                dgram = yield sb.recv()
                stats.feed(dgram.payload)

        sim.process(receiver())

        def send_all():
            for i in range(500):
                yield from sa.send(("b", 2), packet(i))

        run_process(sim, send_all())
        sim.run(until=sim.now + 1.0)
        assert stats.received == 500 - net.datagrams_lost
        # Tail losses are invisible to a sequence tracker; interior ones
        # must be fully accounted.
        assert stats.lost <= net.datagrams_lost
        assert stats.lost >= net.datagrams_lost - 20
