"""Direct tests of the admin database and session tables."""

import pytest

from repro.core.database import AdminDatabase, ContentEntry, Customer
from repro.core.sessions import DisplayPort, SessionTable
from repro.errors import TypeMismatchError, UnknownContentError, UnknownPortError
from repro.media import ContentTypeRegistry, DEFAULT_TYPES


class TestAdminDatabase:
    def test_customers(self):
        db = AdminDatabase()
        db.add_customer("alice")
        db.add_customer("root", admin=True)
        assert db.authenticate("alice").admin is False
        assert db.authenticate("root").admin is True
        assert db.authenticate("ghost") is None

    def test_content_table(self):
        db = AdminDatabase()
        db.add_content(ContentEntry("movie", "mpeg1", "msu0", "d0"))
        assert db.content("movie").type_name == "mpeg1"
        with pytest.raises(UnknownContentError):
            db.content("ghost")

    def test_remove_content(self):
        db = AdminDatabase()
        db.add_content(ContentEntry("movie", "mpeg1"))
        entry = db.remove_content("movie")
        assert entry.name == "movie"
        with pytest.raises(UnknownContentError):
            db.content("movie")

    def test_listing_sorted(self):
        db = AdminDatabase()
        for name in ("zebra", "alpha"):
            db.add_content(ContentEntry(name, "mpeg1"))
        assert db.listing() == [("alpha", "mpeg1"), ("zebra", "mpeg1")]

    def test_msu_registration_and_down(self):
        db = AdminDatabase()
        db.register_msu("msu0", [("d0", 100), ("d1", 100)])
        assert db.msus["msu0"].available
        assert len(db.available_msus()) == 1
        db.mark_msu_down("msu0")
        assert db.available_msus() == []

    def test_reregistration_updates_free_blocks(self):
        db = AdminDatabase()
        db.register_msu("msu0", [("d0", 100)])
        db.disk("msu0", "d0").bandwidth_used = 1.0
        db.mark_msu_down("msu0")
        db.register_msu("msu0", [("d0", 40)])
        disk = db.disk("msu0", "d0")
        assert disk.free_blocks == 40
        assert db.msus["msu0"].available

    def test_mark_unknown_msu_down_is_noop(self):
        AdminDatabase().mark_msu_down("ghost")


class TestSessionTable:
    def _session(self):
        table = SessionTable()
        return table, table.open(Customer("alice"), "alice-pc")

    def test_open_assigns_unique_ids(self):
        table = SessionTable()
        a = table.open(Customer("x"), "h1")
        b = table.open(Customer("y"), "h2")
        assert a.session_id != b.session_id
        assert len(table) == 2

    def test_get_and_close(self):
        table, session = self._session()
        assert table.get(session.session_id) is session
        table.close(session.session_id)
        with pytest.raises(UnknownPortError):
            table.get(session.session_id)

    def test_close_unknown_session_is_noop(self):
        table = SessionTable()
        assert table.close(99) is None

    def test_port_registration(self):
        _, session = self._session()
        session.register_port(DisplayPort("tv", "mpeg1", address=("h", 1)))
        assert session.port("tv").type_name == "mpeg1"
        session.unregister_port("tv")
        with pytest.raises(UnknownPortError):
            session.port("tv")

    def test_atomic_ports_resolution(self):
        _, session = self._session()
        types = ContentTypeRegistry(DEFAULT_TYPES)
        session.register_port(DisplayPort("v", "rtp-video", address=("h", 1)))
        session.register_port(DisplayPort("a", "vat-audio", address=("h", 3)))
        session.register_port(
            DisplayPort("sem", "seminar", component_ports=("v", "a"))
        )
        members = session.atomic_ports_for("sem", types)
        assert sorted(p.type_name for p in members) == ["rtp-video", "vat-audio"]

    def test_nested_composites_rejected(self):
        _, session = self._session()
        types = ContentTypeRegistry(DEFAULT_TYPES)
        session.register_port(DisplayPort("v", "rtp-video", address=("h", 1)))
        session.register_port(
            DisplayPort("inner", "seminar", component_ports=("v",))
        )
        session.register_port(
            DisplayPort("outer", "seminar", component_ports=("inner",))
        )
        with pytest.raises(TypeMismatchError):
            session.atomic_ports_for("outer", types)
