"""Seeded chaos soaks: fixed seeds on every CI run, a rolling seed nightly.

The fixed seeds keep the tier-1 suite deterministic; the nightly job
exports ``CHAOS_SEED`` (the build date) so coverage keeps moving without
making PR runs flaky.  A failure here means an invariant broke — shrink
it with::

    python -m repro.tools.cli verify --seed <N> --ops 50

which writes a replayable repro file; pin the shrunk plan as a new
regression case in tests/test_verify.py once the bug is fixed.
"""

import os

import pytest

from repro.verify import shrink

FIXED_SEEDS = (1, 2, 3)


def _assert_green(report):
    assert report.ok, report.summary() + "".join(
        f"\n  {v}" for v in report.violations[:10]
    )


@pytest.mark.integration
@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_fixed_seed_soak(chaos_cluster, seed):
    report = chaos_cluster(seed, ops=50)
    _assert_green(report)
    # A soak that exercised nothing proves nothing.
    assert report.stats.get("joins", 0) > 0
    assert report.checks_run > 100


@pytest.mark.soak
def test_rolling_seed_soak(chaos_cluster):
    """Nightly: CHAOS_SEED rolls daily; failures are shrunk before reporting."""
    seed = int(os.environ.get("CHAOS_SEED", "20260805"))
    report = chaos_cluster(seed, ops=80)
    if not report.ok:
        small, small_report = shrink(report.schedule)
        pytest.fail(
            f"seed {seed} violated invariants; shrunk to {len(small)} ops:\n"
            + "\n".join(f"  {op.at:9.4f}s {op.kind} {op.args}" for op in small.ops)
            + "\n" + "\n".join(f"  {v}" for v in small_report.violations[:10])
        )
