"""The MSU's administrative interface and bookkeeping edges."""

import pytest

from repro.core import CalliopeCluster, ClusterConfig
from repro.core.msu.msu import Msu
from repro.errors import StorageError
from repro.hardware.params import MachineParams
from repro.media import MpegEncoder, packetize_cbr
from repro.net.network import Network
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


def bare_msu(sim):
    net = Network(sim, "delivery")
    return Msu(
        sim, "m0", net,
        machine_params=MachineParams(name="m0", disks_per_hba=(2,)),
        ibtree_config=SMALL,
    )


class TestAdminLoad:
    def test_load_sets_duration_and_root(self, sim):
        msu = bare_msu(sim)
        packets = packetize_cbr(MpegEncoder(seed=1).bitstream(5.0), MPEG1_RATE, 1024)
        disk = msu.disk_ids()[0]
        handle = msu.admin_load(disk, "movie", "mpeg1", packets)
        assert handle.duration_us == packets[-1][0]
        assert handle.nblocks >= 2
        assert handle.root is not None

    def test_load_costs_no_sim_time(self, sim):
        msu = bare_msu(sim)
        packets = packetize_cbr(MpegEncoder(seed=1).bitstream(2.0), MPEG1_RATE, 1024)
        msu.admin_load(msu.disk_ids()[0], "movie", "mpeg1", packets)
        assert sim.now == 0.0

    def test_duplicate_load_rejected(self, sim):
        msu = bare_msu(sim)
        disk = msu.disk_ids()[0]
        msu.admin_load(disk, "movie", "mpeg1", [(0, b"x" * 100)])
        with pytest.raises(StorageError):
            msu.admin_load(disk, "movie", "mpeg1", [(0, b"x" * 100)])

    def test_explicit_duration_override(self, sim):
        msu = bare_msu(sim)
        handle = msu.admin_load(
            msu.disk_ids()[0], "clip", "mpeg1", [(0, b"x")], duration_us=999
        )
        assert handle.duration_us == 999

    def test_free_blocks_shrink(self, sim):
        msu = bare_msu(sim)
        disk = msu.disk_ids()[0]
        before = msu.free_blocks(disk)
        packets = packetize_cbr(MpegEncoder(seed=1).bitstream(5.0), MPEG1_RATE, 1024)
        handle = msu.admin_load(disk, "movie", "mpeg1", packets)
        assert msu.free_blocks(disk) == before - handle.nblocks


class TestFastScanLinks:
    def test_link_requires_loaded_companions(self, sim):
        msu = bare_msu(sim)
        disk = msu.disk_ids()[0]
        msu.admin_load(disk, "movie", "mpeg1", [(0, b"x")])
        with pytest.raises(StorageError):
            msu.admin_link_fast_scan(disk, "movie", ff_name="movie.ff")

    def test_link_records_both_directions(self, sim):
        msu = bare_msu(sim)
        disk = msu.disk_ids()[0]
        msu.admin_load(disk, "movie", "mpeg1", [(0, b"x")])
        msu.admin_load(disk, "movie.ff", "mpeg1", [(0, b"y")])
        msu.admin_load(disk, "movie.fb", "mpeg1", [(0, b"z")])
        msu.admin_link_fast_scan(disk, "movie", "movie.ff", "movie.fb")
        handle = msu.filesystems[disk].open("movie")
        assert handle.fast_forward == "movie.ff"
        assert handle.fast_backward == "movie.fb"


class TestDiskTopology:
    def test_disk_ids_sorted_and_match_machine(self, sim):
        msu = bare_msu(sim)
        assert msu.disk_ids() == ["m0.sd0", "m0.sd1"]
        assert set(msu.filesystems) == set(msu.disk_ids())
        assert set(msu.disk_processes) == set(msu.disk_ids())

    def test_machine_name_follows_msu(self, sim):
        net = Network(sim, "d")
        msu = Msu(sim, "renamed", net,
                  machine_params=MachineParams(name="other", disks_per_hba=(1,)))
        assert msu.machine.name == "renamed"
        assert msu.disk_ids() == ["renamed.sd0"]


class TestClusterHelpers:
    def test_msu_named(self):
        sim = Simulator()
        cluster = CalliopeCluster(sim, ClusterConfig(n_msus=2, ibtree_config=SMALL))
        assert cluster.msu_named("msu1") is cluster.msus[1]
        from repro.errors import CalliopeError

        with pytest.raises(CalliopeError):
            cluster.msu_named("msu9")

    def test_load_composite_places_on_one_msu(self):
        sim = Simulator()
        cluster = CalliopeCluster(sim, ClusterConfig(n_msus=2, ibtree_config=SMALL))
        cluster.load_composite(
            "sem", "seminar",
            {"rtp-video": [(0, b"v" * 50)], "vat-audio": [(0, b"a" * 50)]},
            msu_index=1,
        )
        video = cluster.coordinator.db.content("sem.rtp-video")
        audio = cluster.coordinator.db.content("sem.vat-audio")
        assert video.msu_name == audio.msu_name == "msu1"
        composite = cluster.coordinator.db.content("sem")
        assert composite.type_name == "seminar"
