"""Fake MSU and the open-loop request generator (§3.3 machinery)."""

import pytest

from repro.clients import FakeMsu, OpenLoopRequester
from repro.core.coordinator import Coordinator
from repro.core.database import ContentEntry
from repro.net import ControlChannel, Network
from repro.sim import Simulator


def build_world(sim):
    coordinator = Coordinator(sim)
    coordinator.db.add_customer("user")
    fake = FakeMsu(sim, "fake0")
    chan = ControlChannel(sim, coordinator.name, "fake0", latency=0.001)
    coordinator.attach_msu(chan)
    fake.attach_coordinator(chan)
    sim.run(until=0.01)
    coordinator.db.add_content(ContentEntry("clip", "mpeg1", "fake0", "fake0.sd0"))
    return coordinator, fake


class TestFakeMsu:
    def test_hello_registers_disks(self, sim):
        coordinator, fake = build_world(sim)
        assert "fake0" in coordinator.db.msus
        assert len(coordinator.db.msus["fake0"].disks) == 2

    def test_terminates_after_50ms(self, sim):
        coordinator, fake = build_world(sim)
        chan = ControlChannel(sim, "cli", coordinator.name, latency=0.001)
        coordinator.connect_client(chan, "cli")
        from repro.net import messages as m

        def scenario():
            chan.send("cli", m.OpenSession("user"))
            reply = yield chan.recv("cli")
            chan.send("cli", m.RegisterPort(reply.session_id, "p", "mpeg1", ("cli", 1)))
            yield chan.recv("cli")
            chan.send("cli", m.PlayRequest(reply.session_id, "clip", "p"))
            yield chan.recv("cli")
            return sim.now

        proc = sim.process(scenario())
        scheduled_at = sim.run_until_event(proc, limit=5.0)
        assert fake.streams_handled == 0  # not yet terminated
        sim.run(until=scheduled_at + 0.2)
        assert fake.streams_handled == 1
        assert coordinator.db.msus["fake0"].delivery_used == 0.0


class TestOpenLoopRequester:
    def test_sends_requested_total(self, sim):
        coordinator, fake = build_world(sim)
        chan = ControlChannel(sim, "gen", coordinator.name, latency=0.001)
        coordinator.connect_client(chan, "gen")
        requester = OpenLoopRequester(
            sim, chan, "gen", ["clip"], rate_per_second=100.0, total_requests=50
        )
        requester.start()
        sim.run_until_event(requester.done, limit=60.0)
        sim.run(until=sim.now + 1.0)
        assert requester.sent == 50
        assert fake.streams_handled == 50
        assert requester.failed == 0

    def test_rate_approximately_honored(self, sim):
        coordinator, fake = build_world(sim)
        chan = ControlChannel(sim, "gen", coordinator.name, latency=0.001)
        coordinator.connect_client(chan, "gen")
        requester = OpenLoopRequester(
            sim, chan, "gen", ["clip"], rate_per_second=50.0, total_requests=200,
            seed=3,
        )
        requester.start()
        start = sim.now
        sim.run_until_event(requester.done, limit=60.0)
        elapsed = sim.now - start
        assert elapsed == pytest.approx(200 / 50.0, rel=0.3)

    def test_bad_parameters(self, sim):
        with pytest.raises(ValueError):
            OpenLoopRequester(sim, None, "g", ["c"], rate_per_second=0, total_requests=5)
