"""Viewer populations and the offered-load experiment machinery."""

import pytest

from repro.clients import Client, ViewerPopulation
from repro.core import CalliopeCluster, ClusterConfig
from repro.experiments.vod_load import erlang_b, run_vod_load
from repro.media import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


def build_world(n_titles=4, title_seconds=30.0):
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
    cluster.coordinator.db.add_customer("user")
    packets = packetize_cbr(
        MpegEncoder(seed=3).bitstream(title_seconds), MPEG1_RATE, 1024
    )
    titles = []
    for t in range(n_titles):
        cluster.load_content(f"t{t}", "mpeg1", packets, disk_index=t % 2)
        titles.append(f"t{t}")
    sim.run(until=0.01)
    return sim, cluster, titles


class TestViewerPopulation:
    def test_light_load_all_admitted(self):
        sim, cluster, titles = build_world()
        client = Client(sim, cluster, "crowd")
        population = ViewerPopulation(
            sim, client, titles, arrival_rate=0.5, mean_watch_seconds=4.0, seed=1
        )
        population.start()
        sim.run(until=60.0)
        population.stop()
        sim.run(until=90.0)
        stats = population.stats
        assert stats.arrivals > 10
        assert stats.blocked == 0 and stats.abandoned == 0
        assert stats.completed == stats.admitted
        assert cluster.coordinator.db.msus["msu0"].active_streams == 0

    def test_overload_produces_abandonment(self):
        sim, cluster, titles = build_world()
        client = Client(sim, cluster, "crowd")
        population = ViewerPopulation(
            sim, client, titles,
            arrival_rate=6.0, mean_watch_seconds=10.0,  # 60 Erlangs >> 22
            queue_patience=1.0, seed=2,
        )
        population.start()
        sim.run(until=40.0)
        population.stop()
        sim.run(until=80.0)
        stats = population.stats
        assert stats.abandoned > 0
        assert stats.blocking_probability > 0.2
        # Concurrency never exceeded the MSU's stream capacity.
        assert stats.concurrent_peak <= 23

    def test_offered_erlangs(self):
        sim, cluster, titles = build_world()
        client = Client(sim, cluster, "crowd")
        population = ViewerPopulation(
            sim, client, titles, arrival_rate=2.0, mean_watch_seconds=5.0
        )
        assert population.offered_erlangs == pytest.approx(10.0)

    def test_bad_parameters(self):
        sim, cluster, titles = build_world(n_titles=1)
        client = Client(sim, cluster, "crowd")
        with pytest.raises(ValueError):
            ViewerPopulation(sim, client, titles, arrival_rate=0, mean_watch_seconds=1)


class TestErlangB:
    def test_zero_offered(self):
        assert erlang_b(0.0, 10) == 0.0

    def test_monotone_in_offered(self):
        values = [erlang_b(a, 22) for a in (5.0, 15.0, 25.0, 40.0)]
        assert values == sorted(values)
        assert values[0] < 0.001 and values[-1] > 0.4

    def test_monotone_in_servers(self):
        assert erlang_b(20.0, 10) > erlang_b(20.0, 30)

    def test_known_value(self):
        # Classic check: A=1 Erlang, 2 servers -> B = (1/2)/(1+1+1/2) = 0.2
        assert erlang_b(1.0, 2) == pytest.approx(0.2)


class TestVodLoadExperiment:
    def test_blocking_rises_with_load(self):
        points = run_vod_load(
            offered_erlangs=(8.0, 30.0), mean_watch_seconds=5.0, duration=60.0
        )
        light, heavy = points
        assert light.blocking_probability < heavy.blocking_probability
        assert heavy.concurrent_peak <= 23
        assert heavy.erlang_b_reference > light.erlang_b_reference
