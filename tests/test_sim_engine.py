"""Unit tests for the DES kernel: events, timeouts, processes."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator, Timeout
from tests.conftest import run_process


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed(42)
        sim.run()
        assert seen == [42]

    def test_fail_delivers_exception(self, sim):
        ev = sim.event()
        ev.succeed if False else None
        err = ValueError("boom")
        seen = []
        ev.add_callback(lambda e: seen.append(e._exc))
        ev.fail(err)
        sim.run()
        assert seen == [err]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)
        with pytest.raises(RuntimeError):
            ev.fail(ValueError())

    def test_fail_requires_exception_instance(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callback_after_trigger_still_runs(self, sim):
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]

    def test_value_raises_stored_exception(self, sim):
        ev = sim.event()
        ev.fail(KeyError("k"))
        with pytest.raises(KeyError):
            _ = ev.value


class TestTimeout:
    def test_fires_at_exact_time(self, sim):
        fired = []
        t = sim.timeout(2.5)
        t.add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_immediately_in_order(self, sim):
        order = []
        sim.timeout(0.0).add_callback(lambda e: order.append("a"))
        sim.timeout(0.0).add_callback(lambda e: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_timeout_value_passthrough(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value="hello")
            return got

        assert run_process(sim, proc()) == "hello"


class TestProcess:
    def test_sequential_timeouts_advance_clock(self, sim):
        times = []

        def proc():
            yield sim.timeout(1.0)
            times.append(sim.now)
            yield sim.timeout(2.0)
            times.append(sim.now)

        run_process(sim, proc())
        assert times == [1.0, 3.0]

    def test_return_value_is_process_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        assert run_process(sim, proc()) == "done"

    def test_join_other_process(self, sim):
        def child():
            yield sim.timeout(5.0)
            return 99

        def parent():
            value = yield sim.process(child())
            return (sim.now, value)

        assert run_process(sim, parent()) == (5.0, 99)

    def test_exception_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("child died")

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError as err:
                return str(err)

        assert run_process(sim, parent()) == "child died"

    def test_failing_process_marks_event_failed(self, sim):
        def proc():
            yield sim.timeout(0.5)
            raise ValueError("oops")

        p = sim.process(proc())
        sim.run()
        assert p.triggered and not p.ok

    def test_yielding_non_event_fails(self, sim):
        def proc():
            yield "not an event"

        p = sim.process(proc())
        sim.run()
        assert p.triggered and not p.ok

    def test_immediate_return(self, sim):
        def proc():
            return 1
            yield  # pragma: no cover

        assert run_process(sim, proc()) == 1

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_waiting_process(self, sim):
        caught = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                caught.append((sim.now, intr.cause))

        p = sim.process(victim())

        def attacker():
            yield sim.timeout(2.0)
            p.interrupt("stop")

        sim.process(attacker())
        sim.run()
        assert caught == [(2.0, "stop")]

    def test_interrupted_wait_does_not_resume_twice(self, sim):
        resumes = []

        def victim():
            try:
                yield sim.timeout(1.0)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
                yield sim.timeout(5.0)
                resumes.append("after")

        p = sim.process(victim())
        p.interrupt()
        sim.run()
        assert resumes == ["interrupt", "after"]

    def test_interrupt_finished_process_raises(self, sim):
        def proc():
            return None
            yield  # pragma: no cover

        p = sim.process(proc())
        sim.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_uncaught_interrupt_quietly_ends_process(self, sim):
        def victim():
            yield sim.timeout(100.0)

        p = sim.process(victim())
        p.interrupt()
        sim.run()
        assert p.triggered and p.ok


class TestConditions:
    def test_all_of_collects_values_in_order(self, sim):
        def proc():
            events = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
            values = yield AllOf(sim, events)
            return (sim.now, values)

        assert run_process(sim, proc()) == (3.0, ["c", "a", "b"])

    def test_all_of_empty(self, sim):
        def proc():
            values = yield AllOf(sim, [])
            return values

        assert run_process(sim, proc()) == []

    def test_any_of_returns_winner(self, sim):
        def proc():
            events = [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
            index, value = yield AnyOf(sim, events)
            return (sim.now, index, value)

        assert run_process(sim, proc()) == (1.0, 1, "fast")

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            AnyOf(sim, [])


class TestSimulator:
    def test_run_until_time_advances_clock(self, sim):
        sim.timeout(1.0)
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_run_until_past_rejected(self, sim):
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_schedule_order_stable_at_same_time(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_negative_schedule_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_peek_reports_next_event_time(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_run_until_event_detects_deadlock(self, sim):
        ev = sim.event()
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run_until_event(ev)

    def test_run_until_event_respects_limit(self, sim):
        ev = sim.event()
        sim.schedule(100.0, ev.succeed)
        with pytest.raises(RuntimeError, match="limit"):
            sim.run_until_event(ev, limit=10.0)

    def test_determinism_two_runs_identical(self):
        def build():
            s = Simulator()
            log = []

            def worker(name, delay):
                for _ in range(5):
                    yield s.timeout(delay)
                    log.append((s.now, name))

            for i, d in enumerate([0.3, 0.7, 0.3]):
                s.process(worker(f"w{i}", d))
            s.run()
            return log

        assert build() == build()
