"""Unit tests for the DES kernel: events, timeouts, processes.

Every test in this module runs twice — once per scheduling engine — via
the parametrized ``sim`` fixture below, so the kernel contract is pinned
on both the reference heap and the timer wheel.
"""

import pytest

from repro.sim import (
    DEFAULT_ENGINE,
    ENGINES,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Simulator,
    Timeout,
)
from tests.conftest import run_process


@pytest.fixture(params=ENGINES)
def sim(request) -> Simulator:
    """A fresh simulator per test, on each engine (overrides conftest)."""
    return Simulator(engine=request.param)


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed(42)
        sim.run()
        assert seen == [42]

    def test_fail_delivers_exception(self, sim):
        ev = sim.event()
        ev.succeed if False else None
        err = ValueError("boom")
        seen = []
        ev.add_callback(lambda e: seen.append(e._exc))
        ev.fail(err)
        sim.run()
        assert seen == [err]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)
        with pytest.raises(RuntimeError):
            ev.fail(ValueError())

    def test_fail_requires_exception_instance(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callback_after_trigger_still_runs(self, sim):
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]

    def test_value_raises_stored_exception(self, sim):
        ev = sim.event()
        ev.fail(KeyError("k"))
        with pytest.raises(KeyError):
            _ = ev.value


class TestTimeout:
    def test_fires_at_exact_time(self, sim):
        fired = []
        t = sim.timeout(2.5)
        t.add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_immediately_in_order(self, sim):
        order = []
        sim.timeout(0.0).add_callback(lambda e: order.append("a"))
        sim.timeout(0.0).add_callback(lambda e: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_timeout_value_passthrough(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value="hello")
            return got

        assert run_process(sim, proc()) == "hello"


class TestProcess:
    def test_sequential_timeouts_advance_clock(self, sim):
        times = []

        def proc():
            yield sim.timeout(1.0)
            times.append(sim.now)
            yield sim.timeout(2.0)
            times.append(sim.now)

        run_process(sim, proc())
        assert times == [1.0, 3.0]

    def test_return_value_is_process_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        assert run_process(sim, proc()) == "done"

    def test_join_other_process(self, sim):
        def child():
            yield sim.timeout(5.0)
            return 99

        def parent():
            value = yield sim.process(child())
            return (sim.now, value)

        assert run_process(sim, parent()) == (5.0, 99)

    def test_exception_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("child died")

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError as err:
                return str(err)

        assert run_process(sim, parent()) == "child died"

    def test_failing_process_marks_event_failed(self, sim):
        def proc():
            yield sim.timeout(0.5)
            raise ValueError("oops")

        p = sim.process(proc())
        sim.run()
        assert p.triggered and not p.ok

    def test_yielding_non_event_fails(self, sim):
        def proc():
            yield "not an event"

        p = sim.process(proc())
        sim.run()
        assert p.triggered and not p.ok

    def test_immediate_return(self, sim):
        def proc():
            return 1
            yield  # pragma: no cover

        assert run_process(sim, proc()) == 1

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_waiting_process(self, sim):
        caught = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                caught.append((sim.now, intr.cause))

        p = sim.process(victim())

        def attacker():
            yield sim.timeout(2.0)
            p.interrupt("stop")

        sim.process(attacker())
        sim.run()
        assert caught == [(2.0, "stop")]

    def test_interrupted_wait_does_not_resume_twice(self, sim):
        resumes = []

        def victim():
            try:
                yield sim.timeout(1.0)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
                yield sim.timeout(5.0)
                resumes.append("after")

        p = sim.process(victim())
        p.interrupt()
        sim.run()
        assert resumes == ["interrupt", "after"]

    def test_interrupt_finished_process_raises(self, sim):
        def proc():
            return None
            yield  # pragma: no cover

        p = sim.process(proc())
        sim.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_uncaught_interrupt_quietly_ends_process(self, sim):
        def victim():
            yield sim.timeout(100.0)

        p = sim.process(victim())
        p.interrupt()
        sim.run()
        assert p.triggered and p.ok


class TestConditions:
    def test_all_of_collects_values_in_order(self, sim):
        def proc():
            events = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
            values = yield AllOf(sim, events)
            return (sim.now, values)

        assert run_process(sim, proc()) == (3.0, ["c", "a", "b"])

    def test_all_of_empty(self, sim):
        def proc():
            values = yield AllOf(sim, [])
            return values

        assert run_process(sim, proc()) == []

    def test_any_of_returns_winner(self, sim):
        def proc():
            events = [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
            index, value = yield AnyOf(sim, events)
            return (sim.now, index, value)

        assert run_process(sim, proc()) == (1.0, 1, "fast")

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            AnyOf(sim, [])


class TestSimulator:
    def test_run_until_time_advances_clock(self, sim):
        sim.timeout(1.0)
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_run_until_past_rejected(self, sim):
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_schedule_order_stable_at_same_time(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_negative_schedule_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_peek_reports_next_event_time(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_run_until_event_detects_deadlock(self, sim):
        ev = sim.event()
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run_until_event(ev)

    def test_run_until_event_respects_limit(self, sim):
        ev = sim.event()
        sim.schedule(100.0, ev.succeed)
        with pytest.raises(RuntimeError, match="limit"):
            sim.run_until_event(ev, limit=10.0)

    def test_determinism_two_runs_identical(self):
        def build():
            s = Simulator()
            log = []

            def worker(name, delay):
                for _ in range(5):
                    yield s.timeout(delay)
                    log.append((s.now, name))

            for i, d in enumerate([0.3, 0.7, 0.3]):
                s.process(worker(f"w{i}", d))
            s.run()
            return log

        assert build() == build()


class TestEngineSelection:
    def test_default_engine_is_wheel(self, monkeypatch):
        monkeypatch.delenv("CALLIOPE_ENGINE", raising=False)
        assert DEFAULT_ENGINE == "wheel"
        assert Simulator().engine == "wheel"

    def test_constructor_overrides_default(self):
        assert Simulator(engine="heap").engine == "heap"

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv("CALLIOPE_ENGINE", "heap")
        assert Simulator().engine == "heap"
        # An explicit constructor argument still wins over the env var.
        assert Simulator(engine="wheel").engine == "wheel"

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(engine="quantum")
        monkeypatch.setenv("CALLIOPE_ENGINE", "quantum")
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator()


class TestLateCallbacks:
    def test_late_registrations_deliver_in_one_slot(self, sim):
        """Post-fire callbacks batch: an interleaved ``schedule(0.0, ...)``
        cannot split an event's value delivery (the seed engine scheduled
        each late callback as its own queue entry, so ``g`` would have run
        between ``f1`` and ``f2``)."""
        ev = sim.event()
        ev.succeed(7)
        sim.run()
        order = []
        ev.add_callback(lambda e: order.append(("f1", e.value)))
        sim.schedule(0.0, order.append, ("g", None))
        ev.add_callback(lambda e: order.append(("f2", e.value)))
        sim.run()
        assert order == [("f1", 7), ("f2", 7), ("g", None)]

    def test_late_batch_after_late_batch(self, sim):
        """A registration made *inside* a late delivery starts a new batch."""
        ev = sim.event()
        ev.succeed("v")
        sim.run()
        order = []
        ev.add_callback(
            lambda e: ev.add_callback(lambda e2: order.append("second"))
        )
        ev.add_callback(lambda e: order.append("first"))
        sim.run()
        assert order == ["first", "second"]


class TestRunUntilEventEdges:
    def test_limit_exactly_at_event_time_still_runs(self, sim):
        """The limit bounds simulation time inclusively: an event due at
        exactly ``limit`` fires rather than raising."""
        ev = sim.event()
        sim.schedule(5.0, ev.succeed, "x")
        assert sim.run_until_event(ev, limit=5.0) == "x"
        assert sim.now == 5.0

    def test_event_fails_while_queue_nonempty(self, sim):
        """A failure surfaces immediately; later queue entries stay put."""
        ev = sim.event()
        later = []
        sim.schedule(1.0, ev.fail, ValueError("boom"))
        sim.schedule(10.0, later.append, "later")
        with pytest.raises(ValueError, match="boom"):
            sim.run_until_event(ev)
        assert later == []
        assert sim.peek() == 10.0

    def test_interrupt_detach_races_pending_resume(self, sim):
        """An interrupt landing between a process's late registration on a
        fired event and that event's late delivery must detach the stale
        ``_resume`` — re-waiting on the same event then wakes exactly once,
        at the already-queued delivery slot."""
        ev = sim.event()
        log = []
        handle = {}

        def waiter():
            yield sim.timeout(0.1)
            log.append("woke")
            try:
                value = yield ev  # long fired -> late registration
                log.append(("value", value))
            except Interrupt:
                log.append("interrupted")
                value = yield ev  # re-wait on the same fired event
                log.append(("re-value", value, sim.now))

        def controller():
            yield sim.timeout(0.1)
            # This entry was queued before the waiter's wakeup at the
            # same instant, so interrupt *delivery* (one slot later)
            # lands after the waiter has parked on the fired event but
            # before its late batch delivers — the race under test.
            handle["p"].interrupt("race")

        ev.succeed("v")
        sim.run(until=0.4)
        sim.process(controller(), name="controller")
        handle["p"] = sim.process(waiter(), name="waiter")
        sim.run()
        assert log == ["woke", "interrupted", ("re-value", "v", 0.5)]
        assert ev._late is None  # the late batch fully drained


class TestPooledSleep:
    def test_sleep_behaves_like_timeout(self, sim):
        log = []

        def pacer():
            for i in range(5):
                yield sim.sleep(0.25, value=i)
                log.append((i, sim.now))

        sim.process(pacer())
        sim.run()
        assert log == [(i, 0.25 * (i + 1)) for i in range(5)]

    def test_sleep_value_passthrough(self, sim):
        values = []

        def proc():
            values.append((yield sim.sleep(0.1, value="tick")))

        sim.process(proc())
        sim.run()
        assert values == ["tick"]

    def test_sleep_recycles_instances(self, sim):
        """Steady-state sleeping reuses pooled timeouts, not fresh objects."""
        seen = set()

        def pacer():
            for _ in range(10):
                t = sim.sleep(0.1)
                seen.add(id(t))
                yield t

        sim.process(pacer())
        sim.run()
        # After the first wakeup the pool serves every later sleep.
        assert len(seen) < 10

    def test_sleep_negative_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.sleep(-0.1)

        def one_sleep():
            yield sim.sleep(0.1)

        # Also on the pooled fast path (a timeout is in the pool now).
        run_process(sim, one_sleep())
        with pytest.raises(ValueError):
            sim.sleep(-0.1)

    def test_late_registration_on_firing_pooled_timeout_not_lost(self, sim):
        """A callback registered on a pooled timeout *while it fires* must
        still be delivered (the instance is left un-recycled for it)."""
        got = []
        t = sim.sleep(1.0, value="v")

        def re_register(event):
            event.add_callback(lambda e: got.append(("late", e.value)))

        t.add_callback(re_register)
        sim.run()
        assert got == [("late", "v")]
