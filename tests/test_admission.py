"""Admission control: placement, accounting, release invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionControl
from repro.core.database import AdminDatabase, ContentEntry
from repro.media.content import ContentType
from repro.units import BLOCK_SIZE, MPEG1_RATE

MPEG = ContentType("mpeg1", MPEG1_RATE, MPEG1_RATE)


def build_db(n_msus=1, disks_per_msu=2, free_blocks=1000):
    db = AdminDatabase()
    for i in range(n_msus):
        db.register_msu(
            f"msu{i}", [(f"msu{i}.sd{d}", free_blocks) for d in range(disks_per_msu)]
        )
    return db


class TestPlaceRead:
    def test_allocates_disk_and_msu_bandwidth(self):
        db = build_db()
        admission = AdmissionControl(db, BLOCK_SIZE)
        entry = ContentEntry("m", "mpeg1", "msu0", "msu0.sd0")
        alloc = admission.place_read(entry, MPEG)
        assert alloc is not None
        assert db.disk("msu0", "msu0.sd0").bandwidth_used == MPEG1_RATE
        assert db.msus["msu0"].delivery_used == MPEG1_RATE

    def test_disk_bandwidth_cap_respected(self):
        db = build_db()
        admission = AdmissionControl(db, BLOCK_SIZE)
        entry = ContentEntry("m", "mpeg1", "msu0", "msu0.sd0")
        capacity = db.disk("msu0", "msu0.sd0").bandwidth_capacity
        granted = 0
        while admission.place_read(entry, MPEG) is not None:
            granted += 1
        assert granted == int(capacity // MPEG1_RATE)

    def test_msu_delivery_cap_respected(self):
        db = build_db()
        admission = AdmissionControl(db, BLOCK_SIZE)
        entries = [
            ContentEntry("a", "mpeg1", "msu0", "msu0.sd0"),
            ContentEntry("b", "mpeg1", "msu0", "msu0.sd1"),
        ]
        granted = 0
        while True:
            alloc = admission.place_read(entries[granted % 2], MPEG)
            if alloc is None:
                break
            granted += 1
        capacity = db.msus["msu0"].delivery_capacity
        assert granted == int(capacity // MPEG1_RATE)

    def test_down_msu_not_used(self):
        db = build_db()
        db.mark_msu_down("msu0")
        admission = AdmissionControl(db, BLOCK_SIZE)
        entry = ContentEntry("m", "mpeg1", "msu0", "msu0.sd0")
        assert admission.place_read(entry, MPEG) is None

    def test_release_returns_bandwidth(self):
        db = build_db()
        admission = AdmissionControl(db, BLOCK_SIZE)
        entry = ContentEntry("m", "mpeg1", "msu0", "msu0.sd0")
        alloc = admission.place_read(entry, MPEG)
        admission.release(alloc)
        assert db.disk("msu0", "msu0.sd0").bandwidth_used == 0.0
        assert db.msus["msu0"].delivery_used == 0.0


class TestPlaceRecord:
    def test_space_estimated_from_storage_rate(self):
        admission = AdmissionControl(build_db(), BLOCK_SIZE)
        blocks = admission.estimate_blocks(MPEG, 60.0)
        expected = int(MPEG1_RATE * 60 / BLOCK_SIZE) + 1
        assert blocks in (expected, expected + 1)

    def test_space_reserved_on_disk(self):
        db = build_db()
        admission = AdmissionControl(db, BLOCK_SIZE)
        alloc = admission.place_record(MPEG, 60.0)
        assert alloc is not None
        disk = db.disk(alloc.msu_name, alloc.disk_id)
        assert disk.free_blocks == 1000 - alloc.reserved_blocks

    def test_insufficient_space_rejects(self):
        db = build_db(free_blocks=3)
        admission = AdmissionControl(db, BLOCK_SIZE)
        assert admission.place_record(MPEG, 3600.0) is None

    def test_least_loaded_disk_chosen(self):
        db = build_db()
        admission = AdmissionControl(db, BLOCK_SIZE)
        first = admission.place_record(MPEG, 10.0)
        second = admission.place_record(MPEG, 10.0)
        assert first.disk_id != second.disk_id  # load balancing

    def test_msu_pinning_for_groups(self):
        db = build_db(n_msus=3)
        admission = AdmissionControl(db, BLOCK_SIZE)
        alloc = admission.place_record(MPEG, 10.0, msu_name="msu2")
        assert alloc.msu_name == "msu2"

    def test_release_returns_unused_space(self):
        """§2.2: overestimated recordings give the space back."""
        db = build_db()
        admission = AdmissionControl(db, BLOCK_SIZE)
        alloc = admission.place_record(MPEG, 60.0)
        admission.release(alloc, blocks_used=4)
        disk = db.disk(alloc.msu_name, alloc.disk_id)
        assert disk.free_blocks == 1000 - 4

    def test_release_msu_zeroes_accounting(self):
        db = build_db()
        admission = AdmissionControl(db, BLOCK_SIZE)
        entry = ContentEntry("m", "mpeg1", "msu0", "msu0.sd0")
        admission.place_read(entry, MPEG)
        admission.release_msu("msu0")
        assert db.msus["msu0"].delivery_used == 0.0


class TestProperties:
    @given(
        ops=st.lists(st.sampled_from(["read", "record", "release"]), max_size=60),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_accounting_never_negative_or_oversubscribed(self, ops, seed):
        import random

        rng = random.Random(seed)
        db = build_db(n_msus=2)
        admission = AdmissionControl(db, BLOCK_SIZE)
        entry = ContentEntry("m", "mpeg1", "msu0", "msu0.sd0")
        live = []
        for op in ops:
            if op == "read":
                alloc = admission.place_read(entry, MPEG)
                if alloc:
                    live.append((alloc, 0))
            elif op == "record":
                alloc = admission.place_record(MPEG, rng.uniform(1, 120))
                if alloc:
                    live.append((alloc, rng.randint(0, alloc.reserved_blocks)))
            elif live:
                alloc, used = live.pop(rng.randrange(len(live)))
                admission.release(alloc, blocks_used=used)
            for state in db.msus.values():
                assert 0 <= state.delivery_used <= state.delivery_capacity + 1e-6
                for disk in state.disks.values():
                    assert 0 <= disk.bandwidth_used <= disk.bandwidth_capacity + 1e-6
                    assert 0 <= disk.free_blocks <= 1000
