"""VCR engine: position math, seeks, fast-scan file switching."""

import pytest

from repro.core.msu.streams import PlayStream, RateVariant, StreamState
from repro.core.msu.vcr import (
    content_fraction,
    entry_position_us,
    seek_stream,
    switch_variant,
)
from repro.errors import VCRError
from repro.net.protocols import RawProtocol
from repro.sim import Simulator
from repro.storage import (
    IBTreeConfig,
    IBTreeWriter,
    MsuFileSystem,
    PacketRecord,
    RawDisk,
    SpanVolume,
)
from tests.conftest import run_process

CONFIG = IBTreeConfig(data_page_size=2048, internal_page_size=256, max_keys=8)


def build_world(sim):
    fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 1024), 2048))

    def load(name, npackets, gap_us):
        handle = fs.create(name, "mpeg1")
        writer = IBTreeWriter(CONFIG)
        t = 0
        for i in range(npackets):
            page = writer.feed(PacketRecord(t, bytes([i % 256]) * 300))
            t += gap_us
            if page is not None:
                fs.append_block_sync(handle, page)
        pages, root = writer.finish()
        for page in pages:
            fs.append_block_sync(handle, page)
        handle.root = root
        handle.duration_us = t - gap_us
        return handle

    normal = load("movie", 300, 20_000)  # ~6 s of content
    ff = load("movie.ff", 20, 20_000)  # every 15th frame
    fb = load("movie.fb", 20, 20_000)
    normal.fast_forward = "movie.ff"
    normal.fast_backward = "movie.fb"
    return fs, normal


def make_stream(handle):
    return PlayStream(1, 1, handle, RawProtocol(), 187_500.0, ("c", 1), CONFIG)


class TestPositionMath:
    def test_content_fraction_normal(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        stream.position_us = normal.duration_us // 2
        assert content_fraction(stream) == pytest.approx(0.5, abs=0.01)

    def test_content_fraction_backward_is_flipped(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        stream.variant = RateVariant.FAST_BACKWARD
        stream.handle = fs.open("movie.fb")
        stream.position_us = 0
        assert content_fraction(stream) == pytest.approx(1.0)

    def test_entry_position_roundtrip(self, sim):
        fs, normal = build_world(sim)
        ff = fs.open("movie.ff")
        pos = entry_position_us(ff, RateVariant.FAST_FORWARD, 0.25)
        assert pos == pytest.approx(0.25 * ff.duration_us, abs=1)
        back = entry_position_us(ff, RateVariant.FAST_BACKWARD, 0.25)
        assert back == pytest.approx(0.75 * ff.duration_us, abs=1)

    def test_fraction_clamped(self, sim):
        fs, normal = build_world(sim)
        assert entry_position_us(normal, RateVariant.NORMAL, 2.0) == normal.duration_us
        assert entry_position_us(normal, RateVariant.NORMAL, -1.0) == 0


class TestSeek:
    def test_seek_sets_skip_position(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        run_process(sim, seek_stream(stream, 3_000_000))
        assert stream.state is StreamState.LOADING
        assert stream.skip_on_page is not None
        page_index, record_index = stream.skip_on_page
        assert stream.next_page == page_index

    def test_seek_past_end_parks_at_eof(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        run_process(sim, seek_stream(stream, normal.duration_us + 10**6))
        assert stream.next_page == normal.nblocks
        assert stream.at_end

    def test_seek_flushes_buffers(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        stream.attach_page(stream.epoch, 0, [PacketRecord(0, b"x")])
        epoch = stream.epoch
        run_process(sim, seek_stream(stream, 1_000_000))
        assert stream.epoch == epoch + 1
        assert not stream.buffers


class TestSwitch:
    def test_switch_to_fast_forward_maps_position(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        stream.position_us = normal.duration_us // 2
        run_process(sim, switch_variant(stream, fs, RateVariant.FAST_FORWARD))
        assert stream.variant is RateVariant.FAST_FORWARD
        assert stream.handle.name == "movie.ff"
        # Post-seek position lands near the middle of the ff file.
        page_index, record_index = stream.skip_on_page
        assert 0 <= page_index < stream.handle.nblocks

    def test_switch_back_to_normal(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        stream.position_us = normal.duration_us // 4
        run_process(sim, switch_variant(stream, fs, RateVariant.FAST_FORWARD))
        stream.position_us = stream.handle.duration_us // 4
        run_process(sim, switch_variant(stream, fs, RateVariant.NORMAL))
        assert stream.handle is normal
        assert stream.variant is RateVariant.NORMAL

    def test_backward_entry_is_reversed(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        stream.position_us = 0  # at content start
        run_process(sim, switch_variant(stream, fs, RateVariant.FAST_BACKWARD))
        fb = fs.open("movie.fb")
        # Content fraction 0 -> fb position near its END.
        assert stream.next_page >= fb.nblocks - 2

    def test_switch_without_companion_raises(self, sim):
        fs, _ = build_world(sim)
        bare = fs.create("bare", "mpeg1")
        bare.duration_us = 100
        stream = make_stream(bare)
        with pytest.raises(VCRError):
            run_process(sim, switch_variant(stream, fs, RateVariant.FAST_FORWARD))

    def test_switch_to_same_variant_noop(self, sim):
        fs, normal = build_world(sim)
        stream = make_stream(normal)
        run_process(sim, switch_variant(stream, fs, RateVariant.NORMAL))
        assert stream.handle is normal
