"""The MSU file system: namespace, data path, reservations, persistence."""

import pytest

from repro.errors import StorageError
from repro.hardware import Machine, MachineParams
from repro.sim import Simulator
from repro.storage import MsuFileSystem, RawDisk, SpanVolume
from tests.conftest import run_process

BLOCK = 4096  # small blocks keep the tests quick


@pytest.fixture
def fs(sim):
    raw = RawDisk(None, capacity=BLOCK * 64)
    return MsuFileSystem(SpanVolume(raw, BLOCK))


class TestNamespace:
    def test_create_open_exists(self, fs):
        handle = fs.create("a", "mpeg1")
        assert fs.open("a") is handle
        assert fs.exists("a")
        assert not fs.exists("b")

    def test_duplicate_create_rejected(self, fs):
        fs.create("a")
        with pytest.raises(StorageError):
            fs.create("a")

    def test_empty_name_rejected(self, fs):
        with pytest.raises(StorageError):
            fs.create("")

    def test_open_missing_raises(self, fs):
        with pytest.raises(StorageError):
            fs.open("ghost")

    def test_delete_frees_blocks(self, sim, fs):
        handle = fs.create("a")
        run_process(sim, fs.append_file_block(handle, b"x" * BLOCK))
        used = fs.allocator.used_blocks
        fs.delete("a")
        assert fs.allocator.used_blocks == used - 1
        assert not fs.exists("a")

    def test_list_files_sorted(self, fs):
        for name in ("zeta", "alpha", "mid"):
            fs.create(name)
        assert [f.name for f in fs.list_files()] == ["alpha", "mid", "zeta"]

    def test_metadata_region_reserved(self, fs):
        assert fs.allocator.used_blocks == MsuFileSystem.META_BLOCKS


class TestDataPath:
    def test_append_and_read_roundtrip(self, sim, fs):
        handle = fs.create("a")

        def proc():
            yield from handle.append_block(b"first" + b"\x00" * (BLOCK - 5))
            yield from handle.append_block(b"second" + b"\x00" * (BLOCK - 6))
            one = yield from handle.read_block(0)
            two = yield from handle.read_block(1)
            return one[:5], two[:6]

        assert run_process(sim, proc()) == (b"first", b"second")
        assert handle.nblocks == 2

    def test_short_block_zero_padded(self, sim, fs):
        handle = fs.create("a")

        def proc():
            yield from handle.append_block(b"xy")
            data = yield from handle.read_block(0)
            return data

        data = run_process(sim, proc())
        assert data == b"xy" + b"\x00" * (BLOCK - 2)

    def test_oversized_block_rejected(self, sim, fs):
        handle = fs.create("a")
        with pytest.raises(StorageError):
            list(fs.append_file_block(handle, b"x" * (BLOCK + 1)))

    def test_read_out_of_range(self, sim, fs):
        handle = fs.create("a")
        with pytest.raises(StorageError):
            list(fs.read_file_block(handle, 0))

    def test_sync_append_and_read(self, fs):
        handle = fs.create("a")
        fs.append_block_sync(handle, b"quick" + b"\x00" * (BLOCK - 5))
        assert fs.read_block_sync(handle, 0)[:5] == b"quick"


class TestReservations:
    def test_create_with_reservation(self, fs):
        free_before = fs.allocator.free_blocks
        fs.create("rec", reserve_blocks=10)
        assert fs.allocator.free_blocks == free_before - 10

    def test_finish_recording_returns_unused(self, sim, fs):
        handle = fs.create("rec", reserve_blocks=10)
        run_process(sim, handle.append_block(b"x" * BLOCK))
        returned = fs.finish_recording(handle)
        assert returned == 9
        assert fs.allocator.reserved_blocks == 0

    def test_finish_twice_is_harmless(self, sim, fs):
        handle = fs.create("rec", reserve_blocks=2)
        fs.finish_recording(handle)
        assert fs.finish_recording(handle) == 0


class TestPersistence:
    def test_sync_and_mount_roundtrip(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        raw = RawDisk(machine.disks[0])
        volume = SpanVolume(raw, BLOCK)
        fs = MsuFileSystem(volume)
        handle = fs.create("movie", "mpeg1")
        handle.duration_us = 123_456
        handle.fast_forward = "movie.ff"
        fs.create("movie.ff", "mpeg1")

        def build():
            yield from handle.append_block(b"DATA" + b"\x00" * (BLOCK - 4))
            handle.root = (0, 24, 0)
            yield from fs.sync_metadata()

        run_process(sim, build())

        def remount():
            mounted = yield from MsuFileSystem.mount(SpanVolume(raw, BLOCK))
            return mounted

        mounted = run_process(sim, remount())
        again = mounted.open("movie")
        assert again.blocks == handle.blocks
        assert again.root == (0, 24, 0)
        assert again.duration_us == 123_456
        assert again.fast_forward == "movie.ff"
        assert mounted.allocator.used_blocks == fs.allocator.used_blocks
        data = run_process(sim, again.read_block(0))
        assert data[:4] == b"DATA"

    def test_mount_bad_magic_rejected(self, sim):
        raw = RawDisk(None, capacity=BLOCK * 16)
        volume = SpanVolume(raw, BLOCK)
        with pytest.raises(StorageError):
            run_process(sim, MsuFileSystem.mount(volume))

    def test_remount_full_namespace_roundtrip(self, sim):
        """Unmount/remount with several files, deletes and all metadata.

        The remounted file system must agree on the namespace (including
        a deletion made before the sync), every stream-metadata field
        (root, ff *and* fb companions, duration), the allocator's free
        pool — and keep allocating without colliding with stored blocks.
        """
        raw = RawDisk(None, capacity=BLOCK * 64)
        fs = MsuFileSystem(SpanVolume(raw, BLOCK))
        movie = fs.create("movie", "mpeg1")
        movie.root = (1, 16, 2)
        movie.duration_us = 987_654
        movie.fast_forward = "movie.ff"
        movie.fast_backward = "movie.fb"
        fs.create("movie.ff", "mpeg1")
        fs.create("movie.fb", "mpeg1")
        fs.create("scratch")

        def build():
            for i in range(3):
                yield from movie.append_block(bytes([65 + i]) * BLOCK)
            yield from fs.append_file_block(fs.open("scratch"), b"z" * BLOCK)
            fs.delete("scratch")
            yield from fs.sync_metadata()

        run_process(sim, build())
        mounted = run_process(sim, MsuFileSystem.mount(SpanVolume(raw, BLOCK)))

        assert [f.name for f in mounted.list_files()] == [
            "movie", "movie.fb", "movie.ff"
        ]
        again = mounted.open("movie")
        assert again.blocks == movie.blocks
        assert again.length == movie.length
        assert again.root == (1, 16, 2)
        assert again.duration_us == 987_654
        assert again.fast_forward == "movie.ff"
        assert again.fast_backward == "movie.fb"
        assert mounted.allocator.used_blocks == fs.allocator.used_blocks
        assert mounted.allocator.free_blocks == fs.allocator.free_blocks
        for i in range(3):
            data = run_process(sim, again.read_block(i))
            assert data == bytes([65 + i]) * BLOCK
        # New allocations on the remounted volume avoid stored extents.
        fresh = mounted.create("new")
        run_process(sim, fresh.append_block(b"n" * BLOCK))
        assert fresh.blocks[0] not in again.blocks
