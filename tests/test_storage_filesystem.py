"""The MSU file system: namespace, data path, reservations, persistence."""

import pytest

from repro.errors import OutOfSpaceError, StorageError
from repro.hardware import Machine, MachineParams
from repro.sim import Simulator
from repro.storage import MsuFileSystem, RawDisk, SpanVolume
from repro.storage.layout import StripedVolume
from tests.conftest import run_process

BLOCK = 4096  # small blocks keep the tests quick


@pytest.fixture
def fs(sim):
    raw = RawDisk(None, capacity=BLOCK * 64)
    return MsuFileSystem(SpanVolume(raw, BLOCK))


class TestNamespace:
    def test_create_open_exists(self, fs):
        handle = fs.create("a", "mpeg1")
        assert fs.open("a") is handle
        assert fs.exists("a")
        assert not fs.exists("b")

    def test_duplicate_create_rejected(self, fs):
        fs.create("a")
        with pytest.raises(StorageError):
            fs.create("a")

    def test_empty_name_rejected(self, fs):
        with pytest.raises(StorageError):
            fs.create("")

    def test_open_missing_raises(self, fs):
        with pytest.raises(StorageError):
            fs.open("ghost")

    def test_delete_frees_blocks(self, sim, fs):
        handle = fs.create("a")
        run_process(sim, fs.append_file_block(handle, b"x" * BLOCK))
        used = fs.allocator.used_blocks
        fs.delete("a")
        assert fs.allocator.used_blocks == used - 1
        assert not fs.exists("a")

    def test_list_files_sorted(self, fs):
        for name in ("zeta", "alpha", "mid"):
            fs.create(name)
        assert [f.name for f in fs.list_files()] == ["alpha", "mid", "zeta"]

    def test_metadata_region_reserved(self, fs):
        assert fs.allocator.used_blocks == MsuFileSystem.META_BLOCKS


class TestDataPath:
    def test_append_and_read_roundtrip(self, sim, fs):
        handle = fs.create("a")

        def proc():
            yield from handle.append_block(b"first" + b"\x00" * (BLOCK - 5))
            yield from handle.append_block(b"second" + b"\x00" * (BLOCK - 6))
            one = yield from handle.read_block(0)
            two = yield from handle.read_block(1)
            return one[:5], two[:6]

        assert run_process(sim, proc()) == (b"first", b"second")
        assert handle.nblocks == 2

    def test_short_block_zero_padded(self, sim, fs):
        handle = fs.create("a")

        def proc():
            yield from handle.append_block(b"xy")
            data = yield from handle.read_block(0)
            return data

        data = run_process(sim, proc())
        assert data == b"xy" + b"\x00" * (BLOCK - 2)

    def test_oversized_block_rejected(self, sim, fs):
        handle = fs.create("a")
        with pytest.raises(StorageError):
            list(fs.append_file_block(handle, b"x" * (BLOCK + 1)))

    def test_read_out_of_range(self, sim, fs):
        handle = fs.create("a")
        with pytest.raises(StorageError):
            list(fs.read_file_block(handle, 0))

    def test_sync_append_and_read(self, fs):
        handle = fs.create("a")
        fs.append_block_sync(handle, b"quick" + b"\x00" * (BLOCK - 5))
        assert fs.read_block_sync(handle, 0)[:5] == b"quick"


class TestReservations:
    def test_create_with_reservation(self, fs):
        free_before = fs.allocator.free_blocks
        fs.create("rec", reserve_blocks=10)
        assert fs.allocator.free_blocks == free_before - 10

    def test_finish_recording_returns_unused(self, sim, fs):
        handle = fs.create("rec", reserve_blocks=10)
        run_process(sim, handle.append_block(b"x" * BLOCK))
        returned = fs.finish_recording(handle)
        assert returned == 9
        assert fs.allocator.reserved_blocks == 0

    def test_finish_twice_is_harmless(self, sim, fs):
        handle = fs.create("rec", reserve_blocks=2)
        fs.finish_recording(handle)
        assert fs.finish_recording(handle) == 0


def _page(i: int) -> bytes:
    """A full, recognizable data page for page index ``i``."""
    return bytes([i % 251]) * BLOCK


class TestAppendWhileReading:
    """A reader polling at the tail of a file an appender is growing.

    This is the live-ingest shape: the RecordStream appends pages while
    the fan-out (and any time-shift patch) follows the tail.  A page
    must only become visible once its write completed, and everything a
    reader is handed must match what the writer put down — on a single
    spanned disk and across a stripe boundary.
    """

    def _race(self, sim, fs, handle, total, reader_lag=0.0):
        seen = {}
        torn = []

        def writer():
            for i in range(total):
                yield from handle.append_block(_page(i))
                yield sim.timeout(0.003)

        def reader():
            next_page = 0
            while next_page < total:
                if handle.nblocks <= next_page:
                    # At the tail: poll, exactly like a tail-follower's
                    # duty cycle waiting for the ingest to advance.
                    yield sim.timeout(0.001)
                    continue
                data = yield from handle.read_block(next_page)
                seen[next_page] = data
                if data != _page(next_page):
                    torn.append(next_page)
                next_page += 1
                if reader_lag:
                    yield sim.timeout(reader_lag)

        sim.process(writer(), name="writer")
        sim.process(reader(), name="reader")
        sim.run(until=60.0)
        assert len(seen) == total
        assert torn == []

    def test_reader_follows_growing_tail(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        fs = MsuFileSystem(SpanVolume(RawDisk(machine.disks[0]), BLOCK))
        handle = fs.create("live", "mpeg1")
        self._race(sim, fs, handle, total=24)
        assert handle.nblocks == 24

    def test_reader_follows_tail_across_stripe_boundary(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(2,)))
        volume = StripedVolume(
            [RawDisk(machine.disks[0]), RawDisk(machine.disks[1])], BLOCK
        )
        fs = MsuFileSystem(volume)
        handle = fs.create("live", "mpeg1")
        # Every appended page alternates stripes, so the reader crosses
        # a stripe boundary on every step while appends are in flight.
        self._race(sim, fs, handle, total=24, reader_lag=0.002)
        assert {volume.locate(b)[0] for b in handle.blocks} == {
            volume.disks[0], volume.disks[1]
        }

    def test_unwritten_page_never_visible(self, sim):
        """nblocks must not count a page whose write is still in flight."""
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        fs = MsuFileSystem(SpanVolume(RawDisk(machine.disks[0]), BLOCK))
        handle = fs.create("live", "mpeg1")
        observed = []

        def writer():
            yield from handle.append_block(_page(0))

        def watcher():
            # Sample the metadata at a finer grain than the disk write.
            while sim.now < 5.0:
                observed.append(handle.nblocks)
                if handle.nblocks:
                    return
                yield sim.timeout(1e-5)

        sim.process(writer(), name="writer")
        sim.process(watcher(), name="watcher")
        sim.run(until=10.0)
        # The watcher saw the file empty while the write was in flight,
        # then exactly one whole page — never a partially-landed one.
        assert observed[0] == 0
        assert observed[-1] == 1


class TestRingWindow:
    """Time-shift ring semantics: trims, stable indices, recycling."""

    def test_trim_keeps_absolute_indices(self, sim, fs):
        handle = fs.create("ring", "mpeg1")
        for i in range(8):
            fs.append_block_sync(handle, _page(i))
        assert fs.trim_file_front(handle, 3) == 3
        assert handle.trimmed == 3
        assert handle.nblocks == 8
        assert handle.live_span == 5
        # Absolute page 5 still reads as page 5 after the trim...
        assert fs.read_block_sync(handle, 5) == _page(5)
        # ...and a reclaimed page raises a recognizable error.
        with pytest.raises(StorageError, match="reclaimed"):
            fs.read_block_sync(handle, 2)

    def test_trim_never_reclaims_under_reader(self, sim):
        """Reclaim-under-active-reader regression.

        A tail-following reader interleaves with appends and trims whose
        floor is clamped two pages behind it (the MSU's reclaim rule).
        Every page the reader asks for must still be resident — the trim
        must never win the race against an in-flight read.
        """
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        fs = MsuFileSystem(SpanVolume(RawDisk(machine.disks[0]), BLOCK))
        handle = fs.create("ring", "mpeg1", reserve_blocks=6)
        total, window = 30, 4
        state = {"next": 0}
        got = []

        def writer():
            for i in range(total):
                yield from handle.append_block(_page(i))
                # The reclaim rule: stay inside the window AND at least
                # two pages behind the slowest reader.
                floor = min(
                    handle.nblocks - window, max(0, state["next"] - 2)
                )
                if floor > handle.trimmed:
                    fs.trim_file_front(handle, floor)
                yield sim.timeout(0.004)

        def reader():
            while state["next"] < total:
                if handle.nblocks <= state["next"]:
                    yield sim.timeout(0.002)
                    continue
                page = state["next"]
                data = yield from handle.read_block(page)
                got.append(data == _page(page))
                state["next"] += 1
                yield sim.timeout(0.006)  # slower than the appender

        sim.process(writer(), name="writer")
        sim.process(reader(), name="reader")
        sim.run(until=60.0)
        assert len(got) == total and all(got)
        assert handle.trimmed > 0  # the ring actually reclaimed pages

    def test_ring_recycles_its_reservation(self, sim, fs):
        """A ring appends forever within its fixed reserved budget.

        Regression: trimmed blocks must refill the recording's own
        reservation — without the refill, any broadcast longer than the
        reserve estimate dies with "reservation exhausted".
        """
        handle = fs.create("ring", "mpeg1", reserve_blocks=5)
        free_before = fs.allocator.free_blocks
        window = 3
        for i in range(40):  # 8x the reservation
            fs.append_block_sync(handle, _page(i))
            if handle.live_span > window:
                fs.trim_file_front(handle, handle.nblocks - window)
        assert handle.nblocks == 40
        assert handle.live_span == window
        # The general pool never paid for the overrun...
        assert fs.allocator.free_blocks == free_before
        # ...and the unused remainder still comes back at finish.
        assert fs.finish_recording(handle) == 5 - window
        assert fs.allocator.reserved_blocks == 0

    def test_exhausted_reservation_without_trim_still_raises(self, sim, fs):
        handle = fs.create("rec", "mpeg1", reserve_blocks=2)
        fs.append_block_sync(handle, _page(0))
        fs.append_block_sync(handle, _page(1))
        with pytest.raises(OutOfSpaceError):
            fs.append_block_sync(handle, _page(2))


class TestPersistence:
    def test_sync_and_mount_roundtrip(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        raw = RawDisk(machine.disks[0])
        volume = SpanVolume(raw, BLOCK)
        fs = MsuFileSystem(volume)
        handle = fs.create("movie", "mpeg1")
        handle.duration_us = 123_456
        handle.fast_forward = "movie.ff"
        fs.create("movie.ff", "mpeg1")

        def build():
            yield from handle.append_block(b"DATA" + b"\x00" * (BLOCK - 4))
            handle.root = (0, 24, 0)
            yield from fs.sync_metadata()

        run_process(sim, build())

        def remount():
            mounted = yield from MsuFileSystem.mount(SpanVolume(raw, BLOCK))
            return mounted

        mounted = run_process(sim, remount())
        again = mounted.open("movie")
        assert again.blocks == handle.blocks
        assert again.root == (0, 24, 0)
        assert again.duration_us == 123_456
        assert again.fast_forward == "movie.ff"
        assert mounted.allocator.used_blocks == fs.allocator.used_blocks
        data = run_process(sim, again.read_block(0))
        assert data[:4] == b"DATA"

    def test_mount_bad_magic_rejected(self, sim):
        raw = RawDisk(None, capacity=BLOCK * 16)
        volume = SpanVolume(raw, BLOCK)
        with pytest.raises(StorageError):
            run_process(sim, MsuFileSystem.mount(volume))

    def test_remount_full_namespace_roundtrip(self, sim):
        """Unmount/remount with several files, deletes and all metadata.

        The remounted file system must agree on the namespace (including
        a deletion made before the sync), every stream-metadata field
        (root, ff *and* fb companions, duration), the allocator's free
        pool — and keep allocating without colliding with stored blocks.
        """
        raw = RawDisk(None, capacity=BLOCK * 64)
        fs = MsuFileSystem(SpanVolume(raw, BLOCK))
        movie = fs.create("movie", "mpeg1")
        movie.root = (1, 16, 2)
        movie.duration_us = 987_654
        movie.fast_forward = "movie.ff"
        movie.fast_backward = "movie.fb"
        fs.create("movie.ff", "mpeg1")
        fs.create("movie.fb", "mpeg1")
        fs.create("scratch")

        def build():
            for i in range(3):
                yield from movie.append_block(bytes([65 + i]) * BLOCK)
            yield from fs.append_file_block(fs.open("scratch"), b"z" * BLOCK)
            fs.delete("scratch")
            yield from fs.sync_metadata()

        run_process(sim, build())
        mounted = run_process(sim, MsuFileSystem.mount(SpanVolume(raw, BLOCK)))

        assert [f.name for f in mounted.list_files()] == [
            "movie", "movie.fb", "movie.ff"
        ]
        again = mounted.open("movie")
        assert again.blocks == movie.blocks
        assert again.length == movie.length
        assert again.root == (1, 16, 2)
        assert again.duration_us == 987_654
        assert again.fast_forward == "movie.ff"
        assert again.fast_backward == "movie.fb"
        assert mounted.allocator.used_blocks == fs.allocator.used_blocks
        assert mounted.allocator.free_blocks == fs.allocator.free_blocks
        for i in range(3):
            data = run_process(sim, again.read_block(i))
            assert data == bytes([65 + i]) * BLOCK
        # New allocations on the remounted volume avoid stored extents.
        fresh = mounted.create("new")
        run_process(sim, fresh.append_block(b"n" * BLOCK))
        assert fresh.blocks[0] not in again.blocks
