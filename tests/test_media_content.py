"""Content types: the two-rate table and composite typing (§2.2)."""

import pytest

from repro.errors import TypeMismatchError
from repro.media import DEFAULT_TYPES, ContentType, ContentTypeRegistry
from repro.units import MPEG1_RATE


@pytest.fixture
def registry():
    return ContentTypeRegistry(DEFAULT_TYPES)


class TestRegistry:
    def test_default_types_present(self, registry):
        assert registry.names() == ["mpeg1", "rtp-video", "seminar", "vat-audio"]

    def test_unknown_type_raises(self, registry):
        with pytest.raises(TypeMismatchError):
            registry.get("avi")

    def test_contains(self, registry):
        assert "mpeg1" in registry
        assert "avi" not in registry

    def test_define_requires_known_components(self):
        registry = ContentTypeRegistry()
        with pytest.raises(TypeMismatchError):
            registry.define(ContentType("combo", 0, 0, components=("ghost",)))

    def test_composite_may_not_nest(self, registry):
        with pytest.raises(TypeMismatchError):
            registry.define(
                ContentType("nested", 0, 0, components=("seminar",))
            )

    def test_admin_can_add_types(self, registry):
        """Clients may not define new types without an administrator
        (§2.1); `define` is that administrative path."""
        registry.define(ContentType("jpeg", 1e6, 1e6))
        assert "jpeg" in registry


class TestRates:
    def test_mpeg_rates_equal(self, registry):
        mpeg = registry.get("mpeg1")
        assert mpeg.bandwidth_rate == mpeg.storage_rate == MPEG1_RATE
        assert not mpeg.variable

    def test_variable_type_bandwidth_above_storage(self, registry):
        """§2.2: bandwidth near peak, storage near average for VBR."""
        video = registry.get("rtp-video")
        assert video.variable
        assert video.bandwidth_rate > video.storage_rate


class TestComposite:
    def test_seminar_components(self, registry):
        seminar = registry.get("seminar")
        assert seminar.is_composite
        members = registry.atomic_components("seminar")
        assert sorted(m.name for m in members) == ["rtp-video", "vat-audio"]

    def test_atomic_components_of_atomic_type(self, registry):
        members = registry.atomic_components("mpeg1")
        assert [m.name for m in members] == ["mpeg1"]
