"""Duty-cycle slot arithmetic and slot admission (§2.2.1)."""

import pytest

from repro.core.policy import DutyCycleModel, SlotAdmission
from repro.errors import AdmissionError
from repro.units import MPEG1_RATE


class TestDutyCycleModel:
    def test_cycle_is_block_transmit_time(self):
        model = DutyCycleModel()
        cycle = model.cycle_length(MPEG1_RATE)
        assert cycle == pytest.approx(256 * 1024 / MPEG1_RATE)

    def test_slots_consistent_with_measured_capacity(self):
        """§2.2.1 math vs §3.2.1 measurement: the duty cycle supports at
        least the 11-12 streams per disk that Graph 1 actually ran, and
        the binding constraint is the delivery path, not the disks."""
        model = DutyCycleModel()
        per_disk = model.slots(MPEG1_RATE)
        assert 11 <= per_disk <= 14
        assert 2 * per_disk >= 24  # disks outlast the send path

    def test_service_time_grows_with_concurrency(self):
        light = DutyCycleModel(expected_concurrency=1, nic_active=False)
        heavy = DutyCycleModel(expected_concurrency=3, nic_active=True)
        assert heavy.block_service_time() > light.block_service_time()

    def test_slower_streams_get_more_slots(self):
        model = DutyCycleModel()
        assert model.slots(MPEG1_RATE / 2) >= 2 * model.slots(MPEG1_RATE) - 1

    def test_startup_bound_scales_with_striping(self):
        """§2.3.3: a striped duty cycle covers all N disks, so the VCR
        startup bound is N times as long."""
        model = DutyCycleModel()
        base = model.startup_delay_bound(MPEG1_RATE)
        striped = model.startup_delay_bound(MPEG1_RATE, striped_disks=4)
        assert striped == pytest.approx(4 * base)

    def test_bad_parameters(self):
        model = DutyCycleModel()
        with pytest.raises(ValueError):
            model.cycle_length(0)
        with pytest.raises(ValueError):
            model.startup_delay_bound(MPEG1_RATE, striped_disks=0)

    def test_expected_seek_below_full_stroke(self):
        model = DutyCycleModel()
        full = model.disk.seek_min + model.disk.seek_max_extra
        assert model.disk.seek_min < model.expected_seek_time() < full


class TestSlotAdmission:
    def test_admits_up_to_capacity(self):
        admission = SlotAdmission(DutyCycleModel(), MPEG1_RATE)
        for _ in range(admission.capacity):
            admission.admit()
        assert admission.free_slots == 0
        with pytest.raises(AdmissionError):
            admission.admit()

    def test_release_reopens_slot(self):
        admission = SlotAdmission(DutyCycleModel(), MPEG1_RATE)
        slot = admission.admit("stream-1")
        admission.release(slot)
        assert admission.free_slots == admission.capacity

    def test_release_unknown_slot_rejected(self):
        admission = SlotAdmission(DutyCycleModel(), MPEG1_RATE)
        with pytest.raises(AdmissionError):
            admission.release(7)

    def test_slots_are_unique(self):
        admission = SlotAdmission(DutyCycleModel(), MPEG1_RATE)
        slots = [admission.admit() for _ in range(admission.capacity)]
        assert len(set(slots)) == len(slots)
