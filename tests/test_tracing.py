"""Structured tracing: the server's event log."""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import MpegEncoder, packetize_cbr
from repro.metrics import Tracer
from repro.net import messages as m
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


class TestTracerUnit:
    def test_records_with_timestamps(self, sim):
        tracer = Tracer(lambda: sim.now)
        tracer.record("src", "event", "subject", "detail")
        sim.run(until=2.0)
        tracer.record("src", "event", "subject2")
        assert [e.time for e in tracer.events] == [0.0, 2.0]

    def test_queries(self, sim):
        tracer = Tracer(lambda: sim.now)
        tracer.record("a", "play", "movie")
        tracer.record("a", "vcr", "movie")
        tracer.record("b", "play", "other")
        assert len(tracer.by_category("play")) == 2
        assert len(tracer.by_subject("movie")) == 2
        assert tracer.counts() == {"play": 2, "vcr": 1}

    def test_between(self, sim):
        tracer = Tracer(lambda: sim.now)
        tracer.record("a", "x", "1")
        sim.run(until=5.0)
        tracer.record("a", "x", "2")
        assert len(tracer.between(0.0, 1.0)) == 1
        assert len(tracer.between(4.0, 6.0)) == 1

    def test_capacity_drops(self, sim):
        tracer = Tracer(lambda: sim.now, capacity=2)
        for i in range(5):
            tracer.record("a", "x", i)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert "dropped" in tracer.render()

    def test_render_filtered(self, sim):
        tracer = Tracer(lambda: sim.now)
        tracer.record("a", "play", "movie", "extra")
        text = tracer.render("movie")
        assert "play" in text and "extra" in text


class TestTracedRun:
    def test_full_session_timeline(self):
        sim = Simulator()
        cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
        cluster.coordinator.db.add_customer("user")
        tracer = Tracer(lambda: sim.now)
        cluster.coordinator.tracer = tracer
        cluster.msus[0].tracer = tracer
        packets = packetize_cbr(MpegEncoder(seed=1).bitstream(8.0), MPEG1_RATE, 1024)
        cluster.load_content("movie", "mpeg1", packets)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_ready(view)
            yield sim.timeout(1.0)
            client.vcr(view.group_id, m.VCR_PAUSE)
            yield sim.timeout(0.5)
            client.vcr(view.group_id, m.VCR_PLAY)
            yield sim.timeout(1.0)
            client.quit(view.group_id)
            yield sim.timeout(0.5)

        proc = sim.process(scenario())
        sim.run(until=60.0)
        assert proc.ok
        counts = tracer.counts()
        assert counts["msu-up"] == 1
        assert counts["scheduled"] == 1
        assert counts["play"] == 1
        assert counts["vcr"] == 3  # pause, play, quit arrives as terminate
        assert counts["terminated"] >= 1
        # Events are time-ordered and the schedule precedes the VCR use.
        times = [e.time for e in tracer.events]
        assert times == sorted(times)
        scheduled = tracer.by_category("scheduled")[0]
        first_vcr = tracer.by_category("vcr")[0]
        assert scheduled.time < first_vcr.time

    def test_msu_failure_traced(self):
        sim = Simulator()
        cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
        tracer = Tracer(lambda: sim.now)
        cluster.coordinator.tracer = tracer
        sim.run(until=0.01)
        cluster.fail_msu(0)
        sim.run(until=0.1)
        cluster.rejoin_msu(0)
        sim.run(until=0.2)
        categories = [e.category for e in tracer.events]
        assert categories == ["msu-up", "msu-down", "msu-up"]
