"""Multicast delivery: batched channels, patching streams, merge-aware
admission, and the ledger invariant that the books balance after drain."""

from types import SimpleNamespace

from repro.core.msu.network_process import NetworkProcess
from repro.core.msu.queues import Signal
from repro.clients.playback import splice_flows
from repro.hardware.timer import SystemTimer
from repro.multicast import AdmissionLedger, MulticastConfig
from repro.net.network import Host, Network, is_multicast
from repro.sim import Simulator
from repro.units import MPEG1_RATE

from tests.helpers import MCAST, build_cluster, open_client, start_viewer


def build(length=10.0, multicast=MCAST, n_titles=1, seed=7):
    sim, cluster, _ = build_cluster(
        n_msus=1, disks_per_hba=(1,), seed=seed, length=length,
        multicast=multicast, n_titles=n_titles, run_to=0.01,
    )
    return sim, cluster


def start_viewers_together(sim, requests):
    """Start several (client, title, port) viewers in the same instant,
    so their requests land in one batch window."""

    def scenario(client, title, port):
        yield from client.register_port(port, "mpeg1")
        view = yield from client.play(title, port)
        yield from client.wait_ready(view)
        return view

    procs = [
        sim.process(scenario(client, title, port))
        for client, title, port in requests
    ]
    return [sim.run_until_event(proc, limit=30.0) for proc in procs]


class TestAdmissionLedger:
    def test_channel_lifecycle_balances(self):
        ledger = AdmissionLedger()
        ledger.open_channel(1, "movie", 100.0)
        ledger.note_subscriber(1)
        ledger.charge_patch(1, 7, 100.0, cache_covered=False)
        assert ledger.outstanding() == 200.0
        assert not ledger.balanced()
        assert ledger.refund_patch(1, 7)
        assert not ledger.refund_patch(1, 7)  # already refunded
        ledger.close_channel(1)
        assert ledger.outstanding() == 0.0
        assert ledger.balanced()
        assert ledger.summary() == (1, 1, 1, 1)

    def test_close_refunds_outstanding_patches_implicitly(self):
        ledger = AdmissionLedger()
        ledger.open_channel(1, "movie", 100.0)
        ledger.charge_patch(1, 7, 100.0, cache_covered=True)
        ledger.charge_patch(1, 8, 100.0, cache_covered=False)
        ledger.close_channel(1, forced=True)
        assert ledger.outstanding() == 0.0
        assert ledger.balanced()
        assert ledger.channels[1].forced
        assert ledger.patches_refunded == 2
        assert ledger.patches_cache_covered == 1


class TestSpliceFlows:
    def test_channel_bytes_defer_to_patch_end(self):
        patch = [(1.0, 10), (2.0, 10)]
        channel = [(1.5, 20), (3.0, 20)]
        merged = splice_flows(patch, channel)
        # The channel packet that raced the patch plays once the patch
        # drains; the later one keeps its own arrival time.
        assert merged == [(1.0, 10), (2.0, 10), (2.0, 20), (3.0, 20)]

    def test_empty_flows_pass_through(self):
        assert splice_flows([], [(2.0, 5), (1.0, 5)]) == [(1.0, 5), (2.0, 5)]
        assert splice_flows([(2.0, 5), (1.0, 5)], []) == [(1.0, 5), (2.0, 5)]


class TestIopRemoveWakeup:
    def test_remove_signals_wakeup(self):
        """A removed stream must re-arm the IOP loop: it may be sleeping
        toward the removed stream's deadline (a stale target) or parked
        waiting on that stream alone."""
        sim = Simulator()
        net = Network(sim, "d")
        host = Host(sim, net, "msu")
        iop = NetworkProcess(sim, host.bind(4000), SystemTimer(sim))
        sim.run(until=0.05)  # the loop parks on its wakeup signal
        assert iop.wakeup._event is not None and not iop.wakeup._event.triggered
        iop.remove(SimpleNamespace(stream_id=99))
        assert iop.wakeup._event is None or iop.wakeup._event.triggered


class TestBatching:
    def test_simultaneous_requests_share_one_channel(self):
        sim, cluster = build()
        coord = cluster.coordinator
        manager = coord.channel_manager
        c0 = open_client(sim, cluster, "c0")
        c1 = open_client(sim, cluster, "c1")
        v0, v1 = start_viewers_together(
            sim, [(c0, "title0", "tv"), (c1, "title0", "tv")]
        )
        assert v0.group_id != v1.group_id
        assert manager.channels_created == 1
        assert manager.viewers_joined == 2
        assert manager.batched_joins == 2
        assert manager.patched_joins == 0
        # Admission charged ONE disk slot for the channel, not two.
        disk = coord.db.disk("msu0", "msu0.sd0")
        assert disk.bandwidth_used == MPEG1_RATE
        assert manager.ledger.outstanding() == MPEG1_RATE
        # Both viewers receive the full stream via the fan-out; the data
        # arrives with the group destination, not a unicast one.
        done0 = sim.process(c0.wait_done(v0))
        done1 = sim.process(c1.wait_done(v1))
        sim.run_until_event(done0, limit=60.0)
        sim.run_until_event(done1, limit=60.0)
        assert c0.ports["tv"].channel_stats.packets > 0
        assert c0.ports["tv"].unicast_stats.packets == 0
        assert c0.ports["tv"].stats.packets == c1.ports["tv"].stats.packets
        assert cluster.delivery_net.multicast_copies >= (
            2 * cluster.delivery_net.multicast_carried // 2
        )
        # Channel drained: every charge is back and the books balance.
        sim.run(until=sim.now + 1.0)
        assert disk.bandwidth_used == 0.0
        assert coord.db.msus["msu0"].delivery_used == 0.0
        assert manager.ledger.balanced()
        assert manager.slots_saved() == 1

    def test_different_titles_get_different_channels(self):
        sim, cluster = build(n_titles=2)
        manager = cluster.coordinator.channel_manager
        c0 = open_client(sim, cluster, "c0")
        c1 = open_client(sim, cluster, "c1")
        start_viewer(sim, c0, "title0", "tv")
        start_viewer(sim, c1, "title1", "tv")
        assert manager.channels_created == 2
        assert manager.slots_saved() == 0


class TestPatching:
    def test_late_joiner_patches_then_merges(self):
        sim, cluster = build(length=20.0)
        coord = cluster.coordinator
        manager = coord.channel_manager
        c0 = open_client(sim, cluster, "c0")
        v0 = start_viewer(sim, c0, "title0", "tv")
        sim.run(until=sim.now + 2.0)  # inside the patch horizon
        c1 = open_client(sim, cluster, "c1")
        v1 = start_viewer(sim, c1, "title0", "tv")
        assert manager.channels_created == 1
        assert manager.patched_joins == 1
        join = manager.patch_joins[0]
        assert join.channel_id == 1 and join.group_id == v1.group_id
        # The patch is bounded by the join offset (plus the margin page),
        # which the horizon in turn bounds.
        record_page_us = join.patch_us / join.patch_pages
        assert join.patch_us <= join.offset_us + 2 * record_page_us
        assert join.offset_us <= MCAST.patch_horizon * 1e6
        # While the patch drains the viewer is charged for it.
        assert manager.ledger.outstanding() >= 2 * MPEG1_RATE
        done1 = sim.process(c1.wait_done(v1))
        sim.run_until_event(done1, limit=90.0)
        # The late joiner heard both flows: the unicast patch and the
        # shared channel.
        port = c1.ports["tv"]
        assert port.unicast_stats.packets > 0
        assert port.channel_stats.packets > 0
        assert manager.merges == 1
        merged = splice_flows(
            port.unicast_stats.arrivals, port.channel_stats.arrivals
        )
        assert len(merged) == port.stats.packets
        done0 = sim.process(c0.wait_done(v0))
        sim.run_until_event(done0, limit=90.0)
        sim.run(until=sim.now + 1.0)
        assert manager.ledger.balanced()
        disk = coord.db.disk("msu0", "msu0.sd0")
        assert disk.bandwidth_used == 0.0

    def test_joiner_past_horizon_gets_new_channel(self):
        sim, cluster = build(length=30.0, multicast=MulticastConfig(
            batch_window=0.2, patch_horizon=1.0,
        ))
        manager = cluster.coordinator.channel_manager
        c0 = open_client(sim, cluster, "c0")
        start_viewer(sim, c0, "title0", "tv")
        sim.run(until=sim.now + 3.0)  # well past the 1 s horizon
        c1 = open_client(sim, cluster, "c1")
        start_viewer(sim, c1, "title0", "tv")
        assert manager.channels_created == 2
        assert manager.patched_joins == 0

    def test_every_patch_bounded_by_horizon(self):
        """Audit the invariant over a whole randomized run."""
        from repro.experiments.multicast import run_multicast

        _, on = run_multicast(duration=30.0)
        page_slack = 2  # margin page + ceil rounding
        for offset_us, patch_us in on.patch_bounds:
            assert offset_us <= MCAST.patch_horizon * 1e6
            page_us = 16 * 1024 / MPEG1_RATE * 1e6
            assert patch_us <= offset_us + page_slack * page_us
        assert on.ledger_outstanding == 0.0


class TestLeaveAndDowngrade:
    def test_all_subscribers_quitting_closes_channel(self):
        sim, cluster = build(length=20.0)
        coord = cluster.coordinator
        manager = coord.channel_manager
        c0 = open_client(sim, cluster, "c0")
        c1 = open_client(sim, cluster, "c1")
        v0, v1 = start_viewers_together(
            sim, [(c0, "title0", "tv"), (c1, "title0", "tv")]
        )
        sim.run(until=sim.now + 2.0)
        c0.quit(v0.group_id)
        sim.run(until=sim.now + 1.0)
        assert len(manager.channels) == 1  # one viewer still listening
        c1.quit(v1.group_id)
        sim.run(until=sim.now + 1.0)
        assert manager.channels == {}  # idle channel torn down
        assert manager.ledger.balanced()
        disk = coord.db.disk("msu0", "msu0.sd0")
        assert disk.bandwidth_used == 0.0
        assert coord.db.msus["msu0"].delivery_used == 0.0
        assert coord.groups == {}

    def test_vcr_pause_downgrades_to_unicast(self):
        sim, cluster = build(length=20.0)
        coord = cluster.coordinator
        manager = coord.channel_manager
        c0 = open_client(sim, cluster, "c0")
        c1 = open_client(sim, cluster, "c1")
        v0, v1 = start_viewers_together(
            sim, [(c0, "title0", "tv"), (c1, "title0", "tv")]
        )
        sim.run(until=sim.now + 2.0)
        before = c1.ports["tv"].stats.packets
        c0.vcr(v0.group_id, "pause")
        sim.run(until=sim.now + 1.0)
        assert manager.downgrades == 1
        # The downgraded viewer left the fan-out; the other stays on it.
        msu = cluster.msus[0]
        assert len(msu.channels) == 1
        (ch,) = msu.channels.values()
        assert v0.group_id not in ch.subscribers
        assert v1.group_id in ch.subscribers
        # Admission follows: the channel keeps one slot, the private
        # stream was charged its own (downgrade is never refused).
        disk = coord.db.disk("msu0", "msu0.sd0")
        assert disk.bandwidth_used == 2 * MPEG1_RATE
        # The paused viewer stops receiving; the channel viewer does not.
        c0.vcr(v0.group_id, "play")
        done0 = sim.process(c0.wait_done(v0))
        done1 = sim.process(c1.wait_done(v1))
        sim.run_until_event(done1, limit=90.0)
        sim.run_until_event(done0, limit=90.0)
        assert c1.ports["tv"].stats.packets > before
        sim.run(until=sim.now + 1.0)
        assert manager.ledger.balanced()
        assert disk.bandwidth_used == 0.0


class TestEndToEnd:
    def test_multicast_doubles_viewers_per_disk(self):
        from repro.experiments.multicast import run_multicast

        off, on = run_multicast(duration=60.0)
        assert on.concurrent_peak >= 2 * off.concurrent_peak
        assert on.channels_created > 0
        assert on.channel_occupancy > 1.0
        assert on.slots_saved > 0
        assert on.merges > 0
        assert on.ledger_outstanding == 0.0
        # The network carried each channel packet once, fanned out to
        # every subscriber.
        assert on.multicast_copies > on.multicast_sends
