"""The MSU's SPSC shared-memory queue and the coalescing Signal."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.msu.queues import Signal, SpscQueue
from repro.sim import Simulator
from tests.conftest import run_process


class TestSpscQueue:
    def test_fifo(self, sim):
        queue = SpscQueue(sim, capacity=4)
        for i in range(4):
            queue.put(i)
        assert [queue.try_get() for _ in range(4)] == [0, 1, 2, 3]

    def test_capacity_enforced(self, sim):
        queue = SpscQueue(sim, capacity=2)
        assert queue.try_put("a") and queue.try_put("b")
        assert not queue.try_put("c")
        assert queue.full
        with pytest.raises(OverflowError):
            queue.put("c")

    def test_empty_get_returns_none(self, sim):
        queue = SpscQueue(sim, capacity=2)
        assert queue.try_get() is None

    def test_wraparound(self, sim):
        queue = SpscQueue(sim, capacity=3)
        for round_no in range(5):
            for i in range(3):
                queue.put((round_no, i))
            for i in range(3):
                assert queue.try_get() == (round_no, i)

    def test_len(self, sim):
        queue = SpscQueue(sim, capacity=5)
        queue.put(1)
        queue.put(2)
        assert len(queue) == 2
        queue.try_get()
        assert len(queue) == 1

    def test_wait_wakes_consumer(self, sim):
        queue = SpscQueue(sim, capacity=4)

        def consumer():
            while queue.try_get() is None:
                yield queue.wait()
            return sim.now

        def producer():
            yield sim.timeout(2.0)
            queue.put("x")

        sim.process(producer())
        assert run_process(sim, consumer()) == 2.0

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            SpscQueue(sim, capacity=0)

    @given(ops=st.lists(st.one_of(st.integers(0, 100), st.none()), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_deque(self, ops):
        from collections import deque

        sim = Simulator()
        queue = SpscQueue(sim, capacity=8)
        reference = deque()
        for op in ops:
            if op is None:
                assert queue.try_get() == (reference.popleft() if reference else None)
            else:
                ok = queue.try_put(op)
                assert ok == (len(reference) < 8)
                if ok:
                    reference.append(op)
            assert len(queue) == len(reference)


class TestSignal:
    def test_set_wakes_waiter(self, sim):
        signal = Signal(sim)

        def waiter():
            yield signal.wait()
            return sim.now

        def setter():
            yield sim.timeout(1.5)
            signal.set()

        sim.process(setter())
        assert run_process(sim, waiter()) == 1.5

    def test_set_before_wait_is_remembered(self, sim):
        signal = Signal(sim)
        signal.set()

        def waiter():
            yield signal.wait()
            return sim.now

        assert run_process(sim, waiter()) == 0.0

    def test_multiple_sets_coalesce(self, sim):
        signal = Signal(sim)
        signal.set()
        signal.set()
        signal.set()

        def waiter():
            yield signal.wait()  # pending flag consumed here
            second = signal.wait()
            assert not second.triggered  # no stored-up extra wakeups
            return True

        assert run_process(sim, waiter())

    def test_reuses_pending_event(self, sim):
        signal = Signal(sim)
        first = signal.wait()
        second = signal.wait()
        assert first is second
