"""Shared cluster-bringup helpers for the integration test files.

The failover, multicast, cache and chaos tests all stand up the same
small cluster: tiny IB-tree pages so content is multi-page without being
large, a fast heartbeat so detection fits in test-sized horizons, and a
short batch window so multicast channels fire quickly.  The knobs and
the bringup steps live here once; the test modules keep only thin
adapters for their historical signatures.
"""

from __future__ import annotations

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.core.admission import AdmissionControl
from repro.core.database import AdminDatabase, ContentEntry
from repro.failover import FailoverConfig, HeartbeatConfig
from repro.media import MpegEncoder, packetize_cbr
from repro.multicast import MulticastConfig
from repro.net import messages as m
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import BLOCK_SIZE, MPEG1_RATE

__all__ = [
    "SMALL", "FAST", "MCAST", "make_packets", "build_cluster",
    "open_client", "start_stream", "start_viewer", "beat_until",
    "build_admission_db",
]

#: Small IB-tree pages: test titles span many pages without being big.
SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)

#: Fast detection so tests stay short: dead ~0.3 s after the last beat.
FAST = HeartbeatConfig(
    period=0.1, miss_threshold=2, suspect_backoff=0.1,
    backoff_factor=2.0, suspect_probes=1,
)

#: A short batch window so tests do not wait long for channels to fire.
MCAST = MulticastConfig(batch_window=0.2, patch_horizon=6.0)


def make_packets(length: float, seed: int = 3):
    """A ``length``-second CBR MPEG-1 title as loadable packets."""
    return packetize_cbr(MpegEncoder(seed=seed).bitstream(length), MPEG1_RATE, 1024)


def build_cluster(
    *,
    n_msus: int = 2,
    disks_per_hba=None,
    seed: int = 3,
    length: float = 30.0,
    failover=None,
    multicast=None,
    n_titles: int = 0,
    run_to: float = 0.0,
    n_coordinators: int = 1,
    standby: bool = False,
):
    """One small cluster and a packetized title: (sim, cluster, packets).

    ``failover="fast"`` is shorthand for a FailoverConfig on the shared
    :data:`FAST` heartbeat; any other value passes through.  With
    ``n_titles`` > 0 the title is pre-loaded that many times (as
    ``title0..titleN-1``) on the first MSU's first disk, and ``run_to``
    lets callers burn the bringup instant before the test starts.
    ``n_coordinators`` > 1 shards admission that many ways, and
    ``standby`` brings up a warm standby tailing the journal; either
    installs a :class:`~repro.scaleout.ScaleOutConfig`.
    """
    sim = Simulator()
    fo = FailoverConfig(heartbeat=FAST) if failover == "fast" else failover
    extra = {} if disks_per_hba is None else {"disks_per_hba": disks_per_hba}
    if n_coordinators > 1 or standby:
        from repro.scaleout import ScaleOutConfig

        extra["scaleout"] = ScaleOutConfig(
            shards=n_coordinators, standby=standby
        )
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=n_msus, ibtree_config=SMALL, failover=fo,
            multicast=multicast, **extra,
        ),
    )
    cluster.coordinator.db.add_customer("user")
    packets = make_packets(length, seed=seed)
    for t in range(n_titles):
        cluster.load_content(f"title{t}", "mpeg1", packets, disk_index=0)
    if run_to > 0.0:
        sim.run(until=run_to)
    return sim, cluster, packets


def open_client(sim, cluster, name="c0", **kwargs):
    """A connected client with an open session."""
    client = Client(sim, cluster, name, **kwargs)
    proc = sim.process(client.open_session("user"))
    sim.run_until_event(proc, limit=10.0)
    return client


def start_stream(sim, client, title, port):
    """Register ``port``, play ``title``, and wait until data flows."""

    def scenario():
        yield from client.register_port(port, "mpeg1")
        view = yield from client.play(title, port)
        yield from client.wait_ready(view)
        return view

    proc = sim.process(scenario())
    return sim.run_until_event(proc, limit=30.0)


#: The multicast tests call the same bringup a "viewer".
start_viewer = start_stream


def beat_until(sim, monitor, msu_name, stop, period=0.1, positions=()):
    """Feed ``monitor`` heartbeats from ``msu_name`` until ``stop``."""

    def gen():
        seq = 0
        while sim.now < stop:
            seq += 1
            monitor.beat(m.Heartbeat(msu_name, seq, positions))
            yield sim.timeout(period)

    sim.process(gen(), name="beats")


def build_admission_db(cache_bps: float = 4.2e6):
    """One-MSU/one-disk admission fixture: (db, admission, entry)."""
    db = AdminDatabase()
    db.register_msu("msu0", [("msu0.sd0", 1000)], cache_bps=cache_bps)
    entry = ContentEntry("m", "mpeg1", "msu0", "msu0.sd0")
    db.add_content(entry)
    return db, AdmissionControl(db, BLOCK_SIZE), entry
