"""Coordinator scale-out: escrowed shards, warm standby, chaos plans.

The unit half exercises the escrow protocol in isolation — grants from
the bank, steals between shards, overdraft-under-exhaustion and its
self-heal, snapshot/replay round trips — plus the generalized heartbeat
intake the leader watch rides on.  The integration half brings up real
clusters: a warm standby that takes over within one ``report_grace``
with zero dropped streams, sharded admission that conserves every disk
book, and pinned chaos plans mixing leader kills with shard partitions.
"""

import pytest

from repro.core.admission import Allocation
from repro.core.coordinator import Coordinator
from repro.failover.heartbeat import (
    EndpointHealth,
    HeartbeatMonitor,
    MsuHealth,
)
from repro.net import messages as m
from repro.recovery import restore_state, snapshot_state
from repro.scaleout import ShardSet, shard_for
from repro.sim import Simulator
from repro.verify import ChaosConfig, ChaosSchedule, run_schedule
from repro.verify.faults import FAULT_KINDS, SCALEOUT_FAULT_KINDS, FaultOp
from repro.verify.invariants import (
    check_scaleout_escrow,
    check_takeover_latency,
)

from tests.helpers import (
    FAST,
    build_admission_db,
    build_cluster,
    open_client,
    start_stream,
)

EPS = 1e-6


def _alloc(bandwidth, content="m", msu="msu0", disk="msu0.sd0"):
    return Allocation(
        msu_name=msu, disk_id=disk, bandwidth=bandwidth,
        content_name=content,
    )


def _shards(n, capacity=100.0, refill_fraction=0.25, **kwargs):
    """A ShardSet over the one-disk fixture with a chosen capacity."""
    db, _admission, _entry = build_admission_db()
    db.msus["msu0"].disks["msu0.sd0"].bandwidth_capacity = capacity
    return ShardSet(db, n, refill_fraction=refill_fraction, **kwargs)


def _same_shard_titles(shards, count=2):
    """``count`` content names that all route to the same shard."""
    by_shard = {}
    for i in range(64):
        name = f"t{i}"
        by_shard.setdefault(shards.shard_for(name), []).append(name)
        if any(len(names) >= count for names in by_shard.values()):
            break
    return next(n for n in by_shard.values() if len(n) >= count)


class TestShardRouting:
    def test_single_shard_is_always_zero(self):
        assert shard_for("anything", 1) == 0
        assert shard_for("", 1) == 0

    def test_routing_is_stable_and_in_range(self):
        for name in ("title0", "title1", ""):
            s = shard_for(name, 4)
            assert 0 <= s < 4
            assert shard_for(name, 4) == s


class TestEscrowProtocol:
    def test_first_charge_grants_from_bank(self):
        shards = _shards(4)
        alloc = _alloc(10.0)
        shards.on_charge(alloc)
        book = shards.books[("msu0", "msu0.sd0")]
        s = shards.shard_for("m")
        assert book.spent[s] == pytest.approx(10.0)
        assert book.granted[s] >= 10.0 - EPS
        assert shards.grants == 1
        # Conservation: the bank is exactly what was never granted.
        assert sum(book.granted) + book.bank_free() == pytest.approx(100.0)
        assert book.bank_free() >= -EPS
        assert shards.audit() == []

    def test_release_credits_the_owner_shard(self):
        shards = _shards(4)
        alloc = _alloc(10.0)
        shards.on_charge(alloc)
        shards.on_release(alloc)
        book = shards.books[("msu0", "msu0.sd0")]
        assert sum(book.spent) == pytest.approx(0.0)
        assert shards.audit() == []

    def test_edge_and_cache_covered_charges_are_ignored(self):
        shards = _shards(2)
        shards.on_charge(Allocation(
            msu_name="", disk_id="", bandwidth=5.0, edge_name="edge0",
        ))
        shards.on_charge(Allocation(
            msu_name="msu0", disk_id="msu0.sd0", bandwidth=5.0,
            content_name="m", cache_covered=True,
        ))
        assert shards.books == {}

    def test_steal_when_bank_exhausted(self):
        # refill_fraction 2.0 with n=2 makes the quantum the whole
        # capacity: the first shard's grant drains the bank, so the
        # second shard's charge can only be covered by stealing.
        shards = _shards(2, refill_fraction=2.0)
        names = {shards.shard_for(f"t{i}"): f"t{i}" for i in range(16)}
        assert set(names) == {0, 1}
        shards.on_charge(_alloc(10.0, content=names[0]))
        assert shards.steals == 0
        shards.on_charge(_alloc(10.0, content=names[1]))
        assert shards.steals >= 1
        book = shards.books[("msu0", "msu0.sd0")]
        assert sum(book.granted) + book.bank_free() == pytest.approx(100.0)
        assert book.spent == pytest.approx([10.0, 10.0])
        assert shards.audit() == []

    def test_overdraft_under_genuine_exhaustion_then_self_heal(self):
        shards = _shards(1)
        first, second = _alloc(80.0), _alloc(50.0)
        shards.on_charge(first)
        shards.on_charge(second)  # 130 spent against capacity 100
        book = shards.books[("msu0", "msu0.sd0")]
        assert shards.overdrafts == 1
        assert book.spent[0] == pytest.approx(130.0)
        assert book.spent[0] > book.granted[0]
        # Legal overdraft: nothing anywhere was free, audit stays clean.
        assert shards.audit() == []
        # A release frees escrow; _repair must top the slice back up.
        shards.on_release(first)
        assert book.spent[0] == pytest.approx(50.0)
        assert book.granted[0] >= book.spent[0] - EPS
        assert shards.audit() == []

    def test_partitioned_shard_neither_admits_nor_yields(self):
        shards = _shards(2, refill_fraction=2.0)
        names = {shards.shard_for(f"t{i}"): f"t{i}" for i in range(16)}
        shards.on_charge(_alloc(10.0, content=names[0]))  # bank drained
        shards.partition(0)
        assert not shards.can_admit(0, "msu0", "msu0.sd0", 1.0)
        # Shard 1 cannot steal from the partitioned holder: overdraft.
        shards.on_charge(_alloc(10.0, content=names[1]))
        assert shards.steals == 0
        assert shards.overdrafts == 1
        shards.heal(0)
        assert shards.can_admit(0, "msu0", "msu0.sd0", 1.0)

    def test_can_admit_counts_bank_and_stealable_escrow(self):
        shards = _shards(2)
        assert shards.can_admit(0, "msu0", "msu0.sd0", 100.0)
        assert not shards.can_admit(0, "msu0", "msu0.sd0", 100.1)
        assert not shards.can_admit(0, "msu0", "nope", 1.0)

    def test_release_msu_zeroes_spends(self):
        shards = _shards(2)
        shards.on_charge(_alloc(10.0))
        shards.on_release_msu("msu0")
        book = shards.books[("msu0", "msu0.sd0")]
        assert sum(book.spent) == 0.0
        assert sum(book.granted) > 0.0  # grants survive (re-derived spends)

    def test_grants_and_steals_are_journaled(self):
        records = []
        shards = _shards(2, refill_fraction=2.0)
        shards.journal = lambda kind, payload: records.append((kind, payload))
        names = {shards.shard_for(f"t{i}"): f"t{i}" for i in range(16)}
        shards.on_charge(_alloc(10.0, content=names[0]))
        shards.on_charge(_alloc(10.0, content=names[1]))
        kinds = [kind for kind, _ in records]
        assert "shard-grant" in kinds and "shard-steal" in kinds

    def test_replay_reproduces_the_split(self):
        records = []
        shards = _shards(4)
        shards.journal = lambda kind, payload: records.append((kind, payload))
        allocs = [_alloc(10.0, content=f"t{i}") for i in range(6)]
        for alloc in allocs:
            shards.on_charge(alloc)
        clone = _shards(4)
        clone.replaying = True
        for kind, payload in records:
            if kind == "shard-grant":
                clone.apply_grant(payload)
            else:
                clone.apply_steal(payload)
        for alloc in allocs:
            clone.on_charge(alloc)
        assert clone.state() == shards.state()

    def test_snapshot_round_trip_and_shard_count_mismatch(self):
        shards = _shards(4)
        shards.on_charge(_alloc(10.0))
        clone = _shards(4)
        clone.restore(shards.state())
        assert clone.state() == shards.state()
        other = _shards(2)
        other.on_charge(_alloc(5.0))
        other.restore(shards.state())  # n mismatch: start from empty
        assert other.books == {}

    def test_admission_delay_serializes_per_shard(self):
        shards = _shards(2, service_time=0.05)
        assert shards.admission_delay(0, 0.0) == pytest.approx(0.05)
        assert shards.admission_delay(0, 0.0) == pytest.approx(0.10)
        assert shards.admission_delay(1, 0.0) == pytest.approx(0.05)
        free = _shards(2)  # service_time 0: the decision is free
        assert free.admission_delay(0, 0.0) == 0.0


class TestHeartbeatGeneralization:
    """Satellite: the MSU watchdog now watches arbitrary endpoints."""

    def _monitor(self, deaths):
        sim = Simulator()
        return sim, HeartbeatMonitor(sim, FAST, on_dead=deaths.append)

    def test_beat_for_self_arms_and_detects_silence(self):
        deaths = []
        sim, monitor = self._monitor(deaths)
        monitor.beat_for("leader")
        assert monitor.state("leader") == "alive"
        sim.run(until=2.0)  # silence: alive -> suspect -> dead
        assert deaths == ["leader"]

    def test_beat_revives_a_dead_endpoint(self):
        deaths = []
        sim, monitor = self._monitor(deaths)
        monitor.beat_for("leader")
        sim.run(until=2.0)
        assert deaths == ["leader"]
        monitor.beat_for("leader")
        assert monitor.state("leader") == "alive"

    def test_forget_stops_the_watch(self):
        deaths = []
        sim, monitor = self._monitor(deaths)
        monitor.beat_for("leader")
        monitor.forget("leader")
        sim.run(until=2.0)
        assert deaths == []

    def test_msu_heartbeat_message_still_delegates(self):
        deaths = []
        sim, monitor = self._monitor(deaths)
        monitor.beat(m.Heartbeat("msu0", 1, ()))
        assert monitor.state("msu0") == "alive"
        assert MsuHealth is EndpointHealth  # compatibility alias


def _active_streams(coord):
    return sum(len(group.allocations) for group in coord.groups.values())


@pytest.mark.integration
class TestWarmStandbyTakeover:
    def test_takeover_within_grace_keeps_streams(self):
        sim, cluster, _ = build_cluster(
            n_msus=2, n_titles=2, standby=True, run_to=0.05
        )
        client = open_client(sim, cluster)
        start_stream(sim, client, "title0", "p0")
        start_stream(sim, client, "title1", "p1")
        sim.run(until=2.0)
        old = cluster.coordinator
        before = _active_streams(old)
        assert before == 2
        standby = cluster.standbys[0]
        assert standby.records_tailed > 0  # it really was tailing

        cluster.crash_coordinator()
        sim.run(until=4.0)
        assert cluster.takeovers, "standby never took over"
        outcome = cluster.takeovers[-1]
        grace = cluster.config.recovery.report_grace
        assert outcome.takeover_latency <= grace + EPS
        assert outcome.detected_at >= outcome.leader_lost_at
        # The shadow is now the Coordinator; nobody was dropped.
        assert cluster.coordinator is standby.shadow
        assert not cluster.coordinator_down
        assert cluster.coordinator is not old
        assert cluster.coordinator.takeover_drops == 0
        assert _active_streams(cluster.coordinator) == before
        assert cluster.standbys == []
        assert check_takeover_latency(cluster) == []

    def test_new_admissions_work_after_takeover(self):
        sim, cluster, _ = build_cluster(
            n_msus=2, n_titles=2, standby=True, run_to=0.05
        )
        client = open_client(sim, cluster)
        start_stream(sim, client, "title0", "p0")
        sim.run(until=2.0)
        cluster.crash_coordinator()
        sim.run(until=4.0)
        assert cluster.takeovers
        # The old client's connection died with the old leader (clients
        # fail fast, same as a cold restart); a fresh connection reaches
        # the promoted Coordinator, which admits and journals normally.
        wal_before = cluster.journal.next_seq
        fresh = open_client(sim, cluster, name="c1")
        start_stream(sim, fresh, "title1", "p1")
        assert _active_streams(cluster.coordinator) == 2
        assert cluster.journal.next_seq > wal_before

    def test_standby_stands_down_when_leader_was_cold_restarted(self):
        sim, cluster, _ = build_cluster(
            n_msus=2, n_titles=1, standby=True, run_to=0.05
        )
        client = open_client(sim, cluster)
        start_stream(sim, client, "title0", "p0")
        sim.run(until=2.0)
        standby = cluster.standbys[0]
        cluster.crash_coordinator()
        # An operator cold-restarts the leader mid-detection: the beacon
        # went silent long enough for the suspect machine to engage, but
        # the dead verdict lands after the restart — and must be ignored.
        sim.run(until=2.15)
        cluster.restart_coordinator()
        sim.run(until=4.0)
        assert not standby.promoted  # stale verdict was discarded
        assert cluster.takeovers == []
        assert not cluster.coordinator_down


@pytest.mark.integration
class TestShardedCluster:
    def test_sharded_admission_conserves_books(self):
        sim, cluster, _ = build_cluster(
            n_msus=2, n_titles=4, n_coordinators=4, run_to=0.05
        )
        client = open_client(sim, cluster)
        for t in range(4):
            start_stream(sim, client, f"title{t}", f"p{t}")
        sim.run(until=2.0)
        coord = cluster.coordinator
        assert coord.shards is not None and coord.shards.n == 4
        assert _active_streams(coord) == 4
        assert check_scaleout_escrow(cluster) == []
        assert coord.shards.grants > 0

    def test_shard_books_survive_cold_restart(self):
        sim, cluster, _ = build_cluster(
            n_msus=2, n_titles=4, n_coordinators=4, run_to=0.05
        )
        client = open_client(sim, cluster)
        for t in range(4):
            start_stream(sim, client, f"title{t}", f"p{t}")
        sim.run(until=2.0)
        before = cluster.coordinator.shards.state()
        cluster.crash_coordinator()
        sim.run(until=3.0)
        cluster.restart_coordinator()
        sim.run(until=6.0)
        coord = cluster.coordinator
        # Replay rebuilt the same split: grants from the WAL, spends
        # re-derived charge by charge through the observer.
        assert coord.shards.state() == before
        assert check_scaleout_escrow(cluster) == []

    def test_snapshot_carries_the_escrow_section(self):
        sim, cluster, _ = build_cluster(
            n_msus=2, n_titles=2, n_coordinators=2, run_to=0.05
        )
        client = open_client(sim, cluster)
        start_stream(sim, client, "title0", "p0")
        sim.run(until=1.0)
        coord = cluster.coordinator
        state = snapshot_state(coord)
        assert state["shards"] == coord.shards.state()
        clone = Coordinator(Simulator())
        clone.enable_shards(2)
        restore_state(clone, state)
        assert clone.shards.state() == coord.shards.state()


class TestTakeoverInvariant:
    """The drain-time checker itself, against crafted outcomes."""

    def _cluster_with(self, outcome):
        from types import SimpleNamespace

        from repro.recovery import RecoveryConfig

        return SimpleNamespace(
            takeovers=[outcome],
            config=SimpleNamespace(recovery=RecoveryConfig(report_grace=1.0)),
        )

    def test_flags_takeover_slower_than_grace(self):
        from repro.scaleout.standby import TakeoverOutcome

        late = TakeoverOutcome(
            leader_lost_at=1.0, detected_at=2.0, completed_at=2.5,
            records_tailed=3, resyncs=0, streams_at_takeover=1,
        )
        assert check_takeover_latency(self._cluster_with(late))
        fine = TakeoverOutcome(
            leader_lost_at=1.0, detected_at=1.3, completed_at=1.3,
            records_tailed=3, resyncs=0, streams_at_takeover=1,
        )
        assert check_takeover_latency(self._cluster_with(fine)) == []


def plan(seed, ops, horizon=20.0):
    return ChaosSchedule(
        seed=seed, horizon=horizon,
        ops=tuple(FaultOp(at, kind, dict(args)) for at, kind, args in ops),
    )


#: The scaled-out cluster every plan below runs against.
SCALEOUT = ChaosConfig(n_shards=4, standby=True)

#: Pinned scale-out fault plans (by construction): a leader kill with
#: admissions in flight, a shard partition that must heal, and a leader
#: kill landing while a shard is still partitioned.  All must stay green
#: under the full invariant registry, escrow conservation included.
SCALEOUT_PLANS = {
    "leader-kill-mid-admission": plan(41, [
        (1.0, "client_join", {"title": 0, "patience": 4.0}),
        (1.5, "client_join", {"title": 1, "patience": 4.0}),
        (3.0, "coordinator_failover", {}),
        (5.0, "client_join", {"title": 0, "patience": 4.0}),
    ]),
    "shard-partition-heals": plan(42, [
        (1.0, "client_join", {"title": 0, "patience": 4.0}),
        (2.0, "shard_partition", {"shard": 1, "duration": 1.0}),
        (2.3, "client_join", {"title": 1, "patience": 4.0}),
        (4.5, "client_join", {"title": 0, "patience": 4.0}),
    ]),
    "leader-kill-during-partition": plan(43, [
        (1.0, "client_join", {"title": 0, "patience": 4.0}),
        (2.0, "shard_partition", {"shard": 2, "duration": 3.0}),
        (2.5, "coordinator_failover", {}),
        (5.0, "client_join", {"title": 1, "patience": 4.0}),
    ]),
}


@pytest.mark.integration
@pytest.mark.parametrize("name", sorted(SCALEOUT_PLANS))
def test_pinned_scaleout_plan(name):
    report = run_schedule(SCALEOUT_PLANS[name], SCALEOUT)
    assert report.ok, f"{name}: {[str(v) for v in report.violations]}"


@pytest.mark.integration
def test_generated_scaleout_sweep_stays_green():
    # The opt-in kind table keeps the frozen one intact (pinned plans
    # from older seeds must keep replaying bit-identically).
    assert "coordinator_failover" not in FAULT_KINDS
    assert set(SCALEOUT_FAULT_KINDS) >= set(FAULT_KINDS) | {
        "coordinator_failover", "shard_partition",
    }
    schedule = ChaosSchedule.generate(
        3, 25, horizon=20.0, kinds=SCALEOUT_FAULT_KINDS
    )
    report = run_schedule(schedule, SCALEOUT)
    assert report.ok, [str(v) for v in report.violations]


class TestFollowJournal:
    """Satellite: ``recovery --follow`` tails a journal like the standby."""

    def _write(self, path, store):
        path.write_text(store.to_json())

    def test_follow_emits_new_records_and_resyncs(self, tmp_path):
        from repro.recovery import JournalStore
        from repro.tools.cli import follow_journal

        store = JournalStore(snapshot_every=0)
        store.append("customer-add", {"name": "a", "admin": False})
        path = tmp_path / "journal.json"
        self._write(path, store)

        lines = []
        polls = []

        def between_polls(_delay):
            # Someone appends while we tail; then a snapshot truncates.
            polls.append(len(lines))
            if len(polls) == 1:
                store.append("note-request", {"name": "m"})
                self._write(path, store)
            elif len(polls) == 2:
                # An unseen record folded into a snapshot: the log was
                # truncated past our cursor, so follow must resync.
                store.append("note-request", {"name": "m2"})
                store.install_snapshot({"fake": "state"})
                self._write(path, store)

        last = follow_journal(
            path, since_seq=0, poll=0.0, max_polls=4,
            sleep=between_polls, emit=lines.append,
        )
        text = "\n".join(lines)
        assert "customer-add" in text
        assert "note-request" in text
        assert "resync" in text
        assert last == store.snapshot_seq

    def test_cli_recovery_follow(self, tmp_path, capsys):
        from repro.recovery import JournalStore
        from repro.tools import cli

        store = JournalStore(snapshot_every=0)
        store.append("customer-add", {"name": "a", "admin": False})
        store.append("note-request", {"name": "m"})
        path = tmp_path / "journal.json"
        self._write(path, store)
        rc = cli.main([
            "recovery", str(path), "--follow", "--since", "0",
            "--max-polls", "1", "--poll", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "following from seq 0" in out
        assert "note-request" in out


@pytest.mark.integration
def test_cli_verify_scaleout_flags(capsys):
    from repro.tools import cli

    rc = cli.main([
        "verify", "--seed", "3", "--ops", "12", "--horizon", "12",
        "--shards", "4", "--standby",
    ])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "OK" in out
