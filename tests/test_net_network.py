"""Simulated networks: datagram delivery, control channels."""

import pytest

from repro.errors import ProtocolError
from repro.hardware import Machine, MachineParams
from repro.hardware.params import FDDI
from repro.net import ControlChannel, Datagram, Host, Network
from repro.sim import Simulator
from tests.conftest import run_process


class TestHostsAndSockets:
    def test_bind_ephemeral_ports_unique(self, sim):
        net = Network(sim)
        host = Host(sim, net, "h")
        a, b = host.bind(), host.bind()
        assert a.port != b.port

    def test_bind_duplicate_port_rejected(self, sim):
        net = Network(sim)
        host = Host(sim, net, "h")
        host.bind(7000)
        with pytest.raises(ProtocolError):
            host.bind(7000)

    def test_duplicate_host_rejected(self, sim):
        net = Network(sim)
        Host(sim, net, "h")
        with pytest.raises(ProtocolError):
            Host(sim, net, "h")

    def test_close_unbinds(self, sim):
        net = Network(sim)
        host = Host(sim, net, "h")
        sock = host.bind(7000)
        sock.close()
        assert host.socket_on(7000) is None


class TestDelivery:
    def test_datagram_arrives_after_latency(self, sim):
        net = Network(sim, latency=0.25)
        a = Host(sim, net, "a")
        b = Host(sim, net, "b")
        sa = a.bind(1000)
        sb = b.bind(2000)

        def proc():
            yield from sa.send(("b", 2000), b"ping")
            dgram = yield sb.recv()
            return (sim.now, dgram.payload, dgram.src)

        now, payload, src = run_process(sim, proc())
        assert payload == b"ping"
        assert src == ("a", 1000)
        assert now == pytest.approx(0.25)

    def test_unknown_destination_dropped(self, sim):
        net = Network(sim, latency=0.01)
        a = Host(sim, net, "a")
        sa = a.bind(1000)
        run_process(sim, sa.send(("ghost", 1), b"x"))
        sim.run()  # nothing blows up; datagram vanished

    def test_unbound_port_dropped(self, sim):
        net = Network(sim, latency=0.01)
        a = Host(sim, net, "a")
        b = Host(sim, net, "b")
        sa = a.bind(1000)
        run_process(sim, sa.send(("b", 9999), b"x"))
        sim.run()
        assert net.datagrams_carried == 1

    def test_machine_host_pays_send_path(self, sim):
        net = Network(sim, latency=0.0)
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        nic = machine.add_nic(FDDI)
        a = Host(sim, net, "a", machine=machine, nic=nic)
        b = Host(sim, net, "b")
        sa = a.bind(1000)
        b.bind(2000)
        run_process(sim, sa.send(("b", 2000), b"x" * 4096))
        assert sim.now > 0.0003  # copy + checksum + dma took real time
        assert nic.packets_sent == 0 or nic.bytes_sent >= 0

    def test_notify_callback_fires(self, sim):
        net = Network(sim, latency=0.0)
        a = Host(sim, net, "a")
        b = Host(sim, net, "b")
        sa = a.bind(1000)
        sb = b.bind(2000)
        pings = []
        sb.notify = lambda: pings.append(sim.now)
        run_process(sim, sa.send(("b", 2000), b"x"))
        sim.run()
        assert len(pings) == 1

    def test_jitter_bounded(self):
        sim = Simulator()
        net = Network(sim, latency=0.01, jitter=0.005, seed=3)
        a = Host(sim, net, "a")
        b = Host(sim, net, "b")
        sa = a.bind(1000)
        sb = b.bind(2000)
        arrivals = []

        def sender():
            for _ in range(50):
                yield from sa.send(("b", 2000), b"x")

        def receiver():
            for _ in range(50):
                yield sb.recv()
                arrivals.append(sim.now)

        sim.process(sender())
        done = sim.process(receiver())
        sim.run_until_event(done)
        assert all(0.01 <= t <= 0.015 + 1e-9 for t in arrivals)


class TestControlChannel:
    def test_in_order_delivery(self, sim):
        chan = ControlChannel(sim, "x", "y", latency=0.001)
        for i in range(5):
            chan.send("x", i)

        def receiver():
            out = []
            for _ in range(5):
                msg = yield chan.recv("y")
                out.append(msg)
            return out

        assert run_process(sim, receiver()) == [0, 1, 2, 3, 4]

    def test_close_wakes_both_ends_with_none(self, sim):
        chan = ControlChannel(sim, "x", "y", latency=0.001)

        def end(name):
            msg = yield chan.recv(name)
            return msg

        px = sim.process(end("x"))
        py = sim.process(end("y"))
        chan.close()
        sim.run()
        assert px.value is None and py.value is None

    def test_send_after_close_vanishes(self, sim):
        chan = ControlChannel(sim, "x", "y", latency=0.001)
        chan.close()
        chan.send("x", "late")
        sim.run()
        assert chan.messages_carried == 0

    def test_unknown_end_rejected(self, sim):
        chan = ControlChannel(sim, "x", "y")
        with pytest.raises(ProtocolError):
            chan.send("z", "msg")
        with pytest.raises(ProtocolError):
            chan.recv("z")

    def test_network_accounting(self, sim):
        net = Network(sim)
        chan = ControlChannel(sim, "x", "y", latency=0.001, network=net)
        chan.send("x", "m", nbytes=300)
        assert net.bytes_carried == 300
        assert chan.bytes_carried == 300
