"""Counter and utilization probes."""

import pytest

from repro.hardware import Machine, MachineParams
from repro.metrics import CounterProbe, UtilizationProbe
from repro.sim import Simulator


class TestCounterProbe:
    def test_samples_per_window_rate(self, sim):
        counter = [0.0]
        probe = CounterProbe(sim, lambda: counter[0], period=1.0)

        def producer():
            while True:
                yield sim.timeout(0.1)
                counter[0] += 5.0

        sim.process(producer())
        sim.run(until=5.05)
        assert len(probe.samples) == 5
        assert probe.mean_rate() == pytest.approx(50.0, rel=0.05)

    def test_peak_rate(self, sim):
        counter = [0.0]
        probe = CounterProbe(sim, lambda: counter[0], period=1.0)

        def bursty():
            yield sim.timeout(2.5)
            counter[0] += 100.0
            yield sim.timeout(10.0)

        sim.process(bursty())
        sim.run(until=5.0)
        assert probe.peak_rate() == pytest.approx(100.0)
        assert min(probe.rates()) == 0.0

    def test_stop_halts_sampling(self, sim):
        probe = CounterProbe(sim, lambda: 0.0, period=1.0)
        sim.run(until=2.5)
        probe.stop()
        sim.run(until=10.0)
        assert len(probe.samples) == 2

    def test_bad_period(self, sim):
        with pytest.raises(ValueError):
            CounterProbe(sim, lambda: 0.0, period=0.0)

    def test_empty_probe_rates(self, sim):
        probe = CounterProbe(sim, lambda: 0.0, period=1.0)
        assert probe.mean_rate() == 0.0
        assert probe.peak_rate() == 0.0


class TestUtilizationProbe:
    def test_cpu_utilization_windows(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        probe = UtilizationProbe(sim, lambda: machine.cpu.busy_time, period=1.0)

        def worker():
            while True:
                yield from machine.cpu.execute(0.3)
                yield sim.timeout(0.7)

        sim.process(worker())
        sim.run(until=10.05)
        assert probe.mean_utilization() == pytest.approx(0.3, abs=0.05)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in probe.utilizations())
