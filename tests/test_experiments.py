"""Scaled-down runs of every experiment: the paper's shape must hold.

These use short durations so the whole file stays test-suite-friendly;
the benchmarks run the full-size versions.
"""

import pytest

from repro.experiments import elevator, ibtree_ablation, memorypath, scalability
from repro.experiments import striping, table1, timer_jitter
from repro.experiments.graph1 import run_graph1
from repro.experiments.graph2 import nv_file_packets, run_graph2


class TestTable1:
    def test_fddi_only_cell(self):
        fddi, _ = table1.run_config((1,), with_disks=False, with_fddi=True, duration=5.0)
        assert fddi == pytest.approx(8.5, abs=0.3)

    def test_one_disk_cell(self):
        _, disks = table1.run_config((1,), with_disks=True, with_fddi=False, duration=10.0)
        assert disks[0] == pytest.approx(3.6, abs=0.3)

    def test_two_hba_fddi_collapse(self):
        """The §3.1 pathology: FDDI collapses only with two active HBAs."""
        one_hba, _ = table1.run_config((2,), True, True, duration=8.0)
        two_hba, _ = table1.run_config((1, 1), True, True, duration=8.0)
        assert two_hba < one_hba * 0.65

    def test_combined_row_shape(self):
        fddi, disks = table1.run_config((2,), True, True, duration=8.0)
        assert fddi == pytest.approx(4.7, abs=0.5)
        assert all(d == pytest.approx(2.45, abs=0.4) for d in disks)

    def test_format_renders_all_rows(self):
        rows = [table1.Table1Row("0 disk", fddi_only=8.5)]
        text = table1.format_table1(rows)
        assert "0 disk" in text and "8.5" in text


class TestGraph1:
    def test_22_good_24_collapsed(self):
        curves = run_graph1(stream_counts=(22, 24), duration=20.0)
        good = curves[22]
        bad = curves[24]
        # Paper: 22 streams 99.6% within 50 ms; 24 streams collapsed.
        assert good.fraction_within(50) > 0.98
        assert good.max_late_ms <= 150.0
        assert bad.fraction_within(50) < 0.6
        assert bad.fraction_within(50) < good.fraction_within(50)


class TestGraph2:
    def test_vbr_worse_than_cbr_and_degrades(self):
        curves = run_graph2(stream_counts=(15, 17), duration=20.0)
        assert curves[15].fraction_within(50) > curves[17].fraction_within(50)
        # Substantially worse than the 22-stream CBR case (§3.2.2).
        assert curves[15].fraction_within(25) < 0.9

    def test_single_file_sync_capacity_drop(self):
        """§3.2.2: one file, synchronized -> 11 streams, not 15."""
        curves = run_graph2(stream_counts=(11, 15), duration=20.0, single_file=True)
        assert curves[11].fraction_within(100) > curves[15].fraction_within(100)

    def test_nv_files_have_rtp_headers(self):
        from repro.net.rtp import RtpHeader

        packets = nv_file_packets(650.0, 2.0, seed=1)
        header = RtpHeader.parse(packets[0][1])
        assert header.payload_type == 28


class TestMemoryPath:
    def test_theoretical_is_7_5(self):
        assert memorypath.theoretical_rate() == pytest.approx(7.5, abs=0.05)

    def test_measured_near_6_3(self):
        result = memorypath.run_memorypath(duration=10.0)
        assert result.measured == pytest.approx(6.3, abs=0.3)
        assert result.measured < result.theoretical


class TestScalability:
    def test_cpu_and_network_utilization(self):
        result = scalability.run_scalability(total_requests=1200)
        assert result.request_rate == pytest.approx(60.0, rel=0.15)
        assert result.cpu_utilization == pytest.approx(0.14, abs=0.03)
        assert result.network_utilization == pytest.approx(0.06, abs=0.02)

    def test_extrapolation_linear(self):
        result = scalability.run_scalability(total_requests=600)
        cpu50, net50 = result.extrapolate(50.0)
        scale = 50.0 / result.request_rate
        assert cpu50 == pytest.approx(result.cpu_utilization * scale)


class TestElevator:
    def test_gain_close_to_paper(self):
        result = elevator.run_elevator(duration=25.0)
        assert 0.02 <= result.elevator_gain <= 0.12  # paper: ~6%

    def test_fcfs_near_single_disk_rate(self):
        result = elevator.run_elevator(duration=25.0)
        assert result.fcfs == pytest.approx(3.6, abs=0.3)


class TestIbtreeAblation:
    def test_read_overhead_near_point_one_percent(self):
        result = ibtree_ablation.run_ibtree_ablation(npackets=5000)
        assert 0.0005 <= result.read_overhead_fraction <= 0.002

    def test_separate_layout_slower(self):
        result = ibtree_ablation.run_ibtree_ablation(npackets=5000)
        assert result.separate_write_seconds > result.integrated_write_seconds


class TestTimerJitter:
    def test_coarser_timer_more_jitter(self):
        curves = timer_jitter.run_timer_jitter(
            granularities_ms=(10.0, 0.0), streams=6, duration=10.0
        )
        coarse, precise = curves[10.0], curves[0.0]
        assert coarse.max_late_ms > precise.max_late_ms
        assert coarse.max_late_ms <= 150.0  # §2.2.1's worst-case bound


class TestClusterScale:
    def test_adding_msus_scales_linearly(self):
        from repro.experiments.cluster_scale import run_cluster_scale

        points = run_cluster_scale(msu_counts=(1, 2), per_msu=10, duration=10.0)
        one, two = points
        assert two.aggregate_mb_s == pytest.approx(2 * one.aggregate_mb_s, rel=0.1)
        assert two.worst_within_50ms > 0.95
        assert two.coordinator_cpu < 0.05


class TestStriping:
    def test_striping_balances_skew(self):
        results = striping.run_striping(duration=25.0)
        per_disk, striped = results
        spread = max(per_disk.per_disk_mb_s) - min(per_disk.per_disk_mb_s)
        balanced = max(striped.per_disk_mb_s) - min(striped.per_disk_mb_s)
        assert balanced < spread * 0.25

    def test_striping_relieves_hot_disk_latency(self):
        results = striping.run_striping(duration=25.0)
        per_disk, striped = results
        assert striped.mean_fetch_ms < per_disk.mean_fetch_ms

    def test_striped_vcr_restart_is_not_catastrophic(self):
        """§2.3.3's retrospective: "In retrospect, we were probably
        wrong" about striped VCR delay being unacceptable."""
        import numpy as np

        results = striping.run_startup_latency(background=8, probes=4)
        per_disk = np.mean(results["per-disk"])
        striped = np.mean(results["striped"])
        # Comparable magnitudes: the striped restart is within 2x either way.
        assert striped < per_disk * 2.0
        assert per_disk < striped * 2.0
