"""Mixed content types sharing one MSU (§2.2's heterogeneous catalog).

The Coordinator's type table carries separate bandwidth/storage rates per
type, so constant-rate MPEG, bursty NV video and VAT audio coexist on the
same disks and the same IOP.  The test runs all three concurrently and
checks that each stream's own service quality holds.
"""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import MpegEncoder, NvEncoder, VatEncoder, packetize_cbr
from repro.net.rtp import RtpHeader
from repro.net.vat import VatHeader
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)
SECONDS = 8.0


def build():
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
    cluster.coordinator.db.add_customer("user")
    mpeg = packetize_cbr(MpegEncoder(seed=1).bitstream(SECONDS), MPEG1_RATE, 1024)
    cluster.load_content("movie", "mpeg1", mpeg, disk_index=0)
    nv = []
    for i, p in enumerate(NvEncoder(seed=2).packets(SECONDS)):
        header = RtpHeader(28, i, int(p.delivery_us * 90 // 1000), 4)
        nv.append((p.delivery_us, header.pack() + p.payload))
    cluster.load_content("nv-talk", "rtp-video", nv, disk_index=1)
    vat = []
    for p in VatEncoder(seed=3).packets(SECONDS):
        header = VatHeader(0, 1, 9, int(p.delivery_us * 8 // 1000))
        vat.append((p.delivery_us, header.pack() + p.payload))
    cluster.load_content("audio", "vat-audio", vat, disk_index=0)
    return sim, cluster, {"movie": mpeg, "nv-talk": nv, "audio": vat}


class TestMixedWorkload:
    def test_three_types_play_concurrently(self):
        sim, cluster, loaded = build()
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            yield from client.register_port("v", "rtp-video")
            yield from client.register_port("a", "vat-audio")
            views = []
            for content, port in [("movie", "tv"), ("nv-talk", "v"), ("audio", "a")]:
                view = yield from client.play(content, port)
                views.append(view)
            for view in views:
                yield from client.wait_done(view)

        proc = sim.process(scenario())
        sim.run(until=120.0)
        assert proc.ok
        assert client.ports["tv"].stats.packets == len(loaded["movie"])
        assert client.ports["v"].stats.packets == len(loaded["nv-talk"])
        assert client.ports["a"].stats.packets == len(loaded["audio"])

    def test_admission_rates_differ_by_type(self):
        sim, cluster, _ = build()
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            yield from client.register_port("a", "vat-audio")
            view = yield from client.play("movie", "tv")
            yield from client.wait_ready(view)
            audio = yield from client.play("audio", "a")
            yield from client.wait_ready(audio)
            return view, audio

        proc = sim.process(scenario())
        sim.run_until_event(proc, limit=30.0)  # streams still active here
        types = cluster.coordinator.types
        state = cluster.coordinator.db.msus["msu0"]
        expected = (
            types.get("mpeg1").bandwidth_rate + types.get("vat-audio").bandwidth_rate
        )
        assert state.delivery_used == pytest.approx(expected)

    def test_schedule_quality_holds_for_each_type(self):
        sim, cluster, loaded = build()
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            for i, (content, ptype) in enumerate(
                [("movie", "mpeg1"), ("nv-talk", "rtp-video"), ("audio", "vat-audio")]
            ):
                yield from client.register_port(f"p{i}", ptype)
                yield from client.play(content, f"p{i}")
            yield sim.timeout(SECONDS + 10.0)

        proc = sim.process(scenario())
        sim.run(until=60.0)
        assert proc.ok
        collector = cluster.msus[0].iop.collector
        # A lightly loaded MSU keeps every type comfortably on schedule.
        assert collector.percent_within(150) > 99.5
