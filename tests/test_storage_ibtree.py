"""IB-tree: page formats, round trips, seeks, integration invariants."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.sim import Simulator
from repro.storage import (
    IBTreeConfig,
    IBTreeReader,
    IBTreeWriter,
    MsuFileSystem,
    PacketRecord,
    RawDisk,
    SpanVolume,
)
from repro.storage.ibtree import KIND_CONTROL, KIND_DATA
from tests.conftest import run_process

#: Small geometry so trees get deep quickly in tests.
SMALL = IBTreeConfig(data_page_size=2048, internal_page_size=256, max_keys=8)


def store_stream(records, config=SMALL):
    """Write records through the IB-tree into an in-memory file system."""
    sim = Simulator()
    fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=config.data_page_size * 4096),
                                  config.data_page_size))
    handle = fs.create("stream")
    writer = IBTreeWriter(config)

    def build():
        for record in records:
            page = writer.feed(record)
            if page is not None:
                yield from handle.append_block(page)
        pages, root = writer.finish()
        for page in pages:
            yield from handle.append_block(page)
        handle.root = root

    run_process(sim, build())
    return sim, handle


def make_records(n, seed=0, max_size=200):
    rng = np.random.default_rng(seed)
    t = 0
    out = []
    for _ in range(n):
        t += int(rng.integers(0, 40_000))
        size = int(rng.integers(1, max_size))
        payload = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        out.append(PacketRecord(t, payload))
    return out


class TestConfig:
    def test_too_many_keys_rejected(self):
        with pytest.raises(ValueError):
            IBTreeConfig(data_page_size=2048, internal_page_size=64, max_keys=100)

    def test_internal_page_must_fit_data_page(self):
        with pytest.raises(ValueError):
            IBTreeConfig(data_page_size=512, internal_page_size=512, max_keys=4)

    def test_production_defaults(self):
        config = IBTreeConfig()
        assert config.data_page_size == 256 * 1024
        assert config.internal_page_size == 28 * 1024
        assert config.max_keys == 1024


class TestWriter:
    def test_decreasing_keys_rejected(self):
        writer = IBTreeWriter(SMALL)
        writer.feed(PacketRecord(100, b"a"))
        with pytest.raises(StorageError):
            writer.feed(PacketRecord(99, b"b"))

    def test_equal_keys_allowed(self):
        writer = IBTreeWriter(SMALL)
        writer.feed(PacketRecord(100, b"a"))
        writer.feed(PacketRecord(100, b"b"))  # burst packets share times

    def test_oversized_packet_rejected(self):
        writer = IBTreeWriter(SMALL)
        with pytest.raises(StorageError):
            writer.feed(PacketRecord(0, b"x" * 4096))

    def test_single_page_file_has_no_root(self):
        _, handle = store_stream(make_records(3, max_size=50))
        assert handle.nblocks == 1
        assert handle.root is None

    def test_multi_page_file_has_root(self):
        _, handle = store_stream(make_records(300))
        assert handle.nblocks > 1
        assert handle.root is not None
        page, offset, level = handle.root
        assert 0 <= page < handle.nblocks

    def test_pages_are_exactly_page_sized(self):
        records = make_records(200)
        writer = IBTreeWriter(SMALL)
        pages = []
        for record in records:
            page = writer.feed(record)
            if page:
                pages.append(page)
        tail, _ = writer.finish()
        pages.extend(tail)
        assert all(len(p) == SMALL.data_page_size for p in pages)

    def test_packets_written_counter(self):
        writer = IBTreeWriter(SMALL)
        for record in make_records(25):
            writer.feed(record)
        assert writer.packets_written == 25


class TestRoundTrip:
    def test_scan_returns_everything_in_order(self):
        records = make_records(500, seed=3)
        sim, handle = store_stream(records)
        reader = IBTreeReader(handle, SMALL)
        out = run_process(sim, reader.scan())
        assert len(out) == len(records)
        assert [r.delivery_us for r in out] == [r.delivery_us for r in records]
        assert all(a.payload == b.payload for a, b in zip(out, records))

    def test_kinds_preserved(self):
        records = [
            PacketRecord(0, b"data", KIND_DATA),
            PacketRecord(10, b"ctrl", KIND_CONTROL),
            PacketRecord(20, b"data2", KIND_DATA),
        ]
        sim, handle = store_stream(records)
        out = run_process(sim, IBTreeReader(handle, SMALL).scan())
        assert [r.kind for r in out] == [KIND_DATA, KIND_CONTROL, KIND_DATA]

    def test_parse_page_rejects_garbage(self):
        with pytest.raises(StorageError):
            IBTreeReader.parse_page(b"\x00" * 64)


class TestSeek:
    def test_seek_finds_first_at_or_after(self):
        records = make_records(400, seed=5)
        sim, handle = store_stream(records)
        reader = IBTreeReader(handle, SMALL)
        times = [r.delivery_us for r in records]
        for target in [0, times[10], times[10] + 1, times[200], times[-1]]:
            position = run_process(sim, reader.seek(target))
            assert position is not None
            page_index, entry_index = position
            page = run_process(sim, handle.read_block(page_index))
            record = IBTreeReader.parse_page(page)[entry_index]
            expected = min(t for t in times if t >= target)
            assert record.delivery_us == expected

    def test_seek_past_end_returns_none(self):
        records = make_records(100, seed=6)
        sim, handle = store_stream(records)
        reader = IBTreeReader(handle, SMALL)
        assert run_process(sim, reader.seek(records[-1].delivery_us + 1)) is None

    def test_seek_in_single_page_file(self):
        records = make_records(3, seed=7, max_size=40)
        sim, handle = store_stream(records)
        position = run_process(sim, IBTreeReader(handle, SMALL).seek(0))
        assert position == (0, 0)

    def test_seek_costs_simulated_reads(self):
        """Seeks traverse internal pages as real block reads (§2.2.1)."""
        sim = Simulator()
        from repro.hardware import Machine, MachineParams

        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        config = SMALL
        fs = MsuFileSystem(SpanVolume(RawDisk(machine.disks[0]), config.data_page_size))
        handle = fs.create("s")
        writer = IBTreeWriter(config)

        def build():
            for record in make_records(400, seed=8):
                page = writer.feed(record)
                if page:
                    yield from handle.append_block(page)
            pages, root = writer.finish()
            for page in pages:
                yield from handle.append_block(page)
            handle.root = root

        run_process(sim, build())
        before = sim.now
        run_process(sim, IBTreeReader(handle, config).seek(10_000))
        assert sim.now > before  # the descent paid for disk reads


class TestIntegration:
    def test_internal_pages_embedded_in_data_pages(self):
        """Full internal pages ride inside data pages (§2.2.1)."""
        records = make_records(2000, seed=9)
        sim, handle = store_stream(records)
        embedded = 0
        for i in range(handle.nblocks):
            page = run_process(sim, handle.read_block(i))
            _, _, _, internal_off, internal_len = struct.unpack_from("<4sHIII", page, 0)
            if internal_len:
                embedded += 1
                assert internal_len == SMALL.internal_page_size
        assert embedded >= 1

    def test_embedded_pages_skipped_on_scan(self):
        records = make_records(2000, seed=10)
        sim, handle = store_stream(records)
        out = run_process(sim, IBTreeReader(handle, SMALL).scan())
        assert len(out) == len(records)


class TestProperties:
    @given(
        deltas=st.lists(st.integers(0, 50_000), min_size=1, max_size=300),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_any_schedule(self, deltas, seed):
        rng = np.random.default_rng(seed)
        t = 0
        records = []
        for delta in deltas:
            t += delta
            size = int(rng.integers(1, 120))
            records.append(
                PacketRecord(t, rng.integers(0, 256, size, dtype=np.uint8).tobytes())
            )
        sim, handle = store_stream(records)
        out = run_process(sim, IBTreeReader(handle, SMALL).scan())
        assert [(r.delivery_us, r.payload) for r in out] == [
            (r.delivery_us, r.payload) for r in records
        ]

    @given(
        n=st.integers(1, 250),
        probe=st.integers(0, 2_000_000),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_seek_matches_linear_search(self, n, probe, seed):
        records = make_records(n, seed=seed)
        sim, handle = store_stream(records)
        position = run_process(sim, IBTreeReader(handle, SMALL).seek(probe))
        after = [r.delivery_us for r in records if r.delivery_us >= probe]
        if not after:
            assert position is None
        else:
            page_index, entry_index = position
            page = run_process(sim, handle.read_block(page_index))
            record = IBTreeReader.parse_page(page)[entry_index]
            assert record.delivery_us == after[0]
