"""Shared pytest fixtures and helpers."""

from __future__ import annotations

import random

import pytest

from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator per test."""
    return Simulator()


@pytest.fixture
def rng(request) -> random.Random:
    """A deterministic per-test RNG (seeded from the test's node id)."""
    return random.Random(f"calliope:{request.node.nodeid}")


@pytest.fixture
def chaos_cluster():
    """Factory for chaos-harness runs: ``chaos_cluster(seed, ops)``.

    Returns a callable that generates the seed's fault schedule, runs it
    on a fresh cluster under the built-in invariant registry, and
    returns the :class:`~repro.verify.harness.ChaosReport`.  Keyword
    arguments pass through to :meth:`ChaosSchedule.generate` /
    :class:`ChaosConfig`.
    """
    from repro.verify import ChaosConfig, ChaosSchedule, run_schedule

    def run(seed: int, ops: int = 50, horizon: float = 20.0, config=None, **gen):
        cfg = config or ChaosConfig()
        schedule = ChaosSchedule.generate(
            seed, ops, horizon=horizon,
            n_msus=cfg.n_msus, n_titles=cfg.n_titles, **gen,
        )
        return run_schedule(schedule, cfg)

    return run


def run_process(sim: Simulator, gen, limit: float = 1e6):
    """Drive ``gen`` to completion and return its value (test helper)."""
    proc = sim.process(gen)
    return sim.run_until_event(proc, limit=limit)
