"""Shared pytest fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator per test."""
    return Simulator()


def run_process(sim: Simulator, gen, limit: float = 1e6):
    """Drive ``gen`` to completion and return its value (test helper)."""
    proc = sim.process(gen)
    return sim.run_until_event(proc, limit=limit)
