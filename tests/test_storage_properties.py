"""Property tests: allocator, IB-tree, and remount against oracle models.

Each test drives the real structure with a generated op sequence and
checks it against a trivially-correct in-memory model — a set of
allocated blocks, a flat list of records, a dict of file contents.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfSpaceError, StorageError
from repro.sim import Simulator
from repro.storage import (
    IBTreeConfig,
    IBTreeReader,
    IBTreeWriter,
    MsuFileSystem,
    PacketRecord,
    RawDisk,
    SpanVolume,
)
from repro.storage.allocator import BitmapAllocator
from repro.storage.check import check_filesystem
from tests.conftest import run_process

pytestmark = pytest.mark.unit

#: Small geometry so trees get deep and disks fill with few ops.
SMALL = IBTreeConfig(data_page_size=2048, internal_page_size=256, max_keys=8)

# -- allocator vs. a set model ----------------------------------------------

#: Op stream encoding: (code, value) interpreted against current state, so
#: hypothesis can shrink sequences without generating invalid ops.
_ALLOC_OPS = st.lists(
    st.tuples(st.sampled_from(["alloc", "free", "reserve", "alloc_res",
                               "release_res"]),
              st.integers(0, 1 << 30)),
    max_size=120,
)


class TestAllocatorModel:
    @given(nblocks=st.integers(1, 64), ops=_ALLOC_OPS)
    @settings(max_examples=80, deadline=None)
    def test_matches_set_model(self, nblocks, ops):
        alloc = BitmapAllocator(nblocks)
        model = set()          # blocks handed out to files
        reservations = []      # (Reservation, remaining) pairs still active

        for code, value in ops:
            if code == "alloc":
                if alloc.free_blocks > 0:
                    block = alloc.alloc()
                    assert block not in model and 0 <= block < nblocks
                    model.add(block)
                else:
                    with pytest.raises(OutOfSpaceError):
                        alloc.alloc()
            elif code == "free":
                if model:
                    block = sorted(model)[value % len(model)]
                    alloc.free(block)
                    model.discard(block)
                    with pytest.raises(StorageError):
                        alloc.free(block)  # double free always rejected
            elif code == "reserve":
                want = value % (nblocks + 1)
                if want <= alloc.free_blocks:
                    reservations.append([alloc.reserve(want), want])
                else:
                    with pytest.raises(OutOfSpaceError):
                        alloc.reserve(want)
            elif code == "alloc_res" and reservations:
                entry = reservations[value % len(reservations)]
                if entry[1] > 0:
                    block = alloc.alloc(entry[0])
                    assert block not in model
                    model.add(block)
                    entry[1] -= 1
                else:
                    with pytest.raises(OutOfSpaceError):
                        alloc.alloc(entry[0])
            elif code == "release_res" and reservations:
                entry = reservations.pop(value % len(reservations))
                entry[0].release()

            # The books match the model after every single op.
            held = sum(remaining for _, remaining in reservations)
            assert alloc.used_blocks == len(model)
            assert alloc.reserved_blocks == held
            assert alloc.free_blocks == nblocks - len(model) - held
            for block in range(nblocks):
                assert alloc.is_allocated(block) == (block in model)


# -- IB-tree writer/reader vs. a flat record list ---------------------------


def _records(deltas_and_sizes):
    t = 0
    out = []
    for delta, size in deltas_and_sizes:
        t += delta
        out.append(PacketRecord(t, bytes([size % 251]) * max(1, size)))
    return out


_RECORD_STREAMS = st.lists(
    st.tuples(st.integers(0, 50_000), st.integers(1, 300)),
    min_size=1, max_size=60,
)


def _store(records, config=SMALL):
    """Write records through the IB-tree into an in-memory file system."""
    sim = Simulator()
    fs = MsuFileSystem(
        SpanVolume(RawDisk(None, capacity=config.data_page_size * 4096),
                   config.data_page_size)
    )
    handle = fs.create("stream")
    writer = IBTreeWriter(config)

    def build():
        for record in records:
            page = writer.feed(record)
            if page is not None:
                yield from handle.append_block(page)
        pages, root = writer.finish()
        for page in pages:
            yield from handle.append_block(page)
        handle.root = root

    run_process(sim, build())
    return sim, handle


class TestIBTreeModel:
    @given(stream=_RECORD_STREAMS)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_every_record(self, stream):
        records = _records(stream)
        sim, handle = _store(records)
        got = run_process(sim, IBTreeReader(handle, SMALL).scan())
        assert [(r.delivery_us, r.payload) for r in got] == [
            (r.delivery_us, r.payload) for r in records
        ]

    @given(stream=_RECORD_STREAMS, frac=st.floats(0.0, 1.2))
    @settings(max_examples=40, deadline=None)
    def test_seek_lands_on_first_record_at_or_after_target(self, stream, frac):
        records = _records(stream)
        sim, handle = _store(records)
        target = int(frac * records[-1].delivery_us)
        result = run_process(sim, IBTreeReader(handle, SMALL).seek(target))
        # Model: the first record whose delivery time is >= target.
        expected = next(
            (r for r in records if r.delivery_us >= target), None
        )
        if expected is None:
            assert result is None
        else:
            page_index, record_index = result
            page = run_process(sim, handle.read_block(page_index))
            got = IBTreeReader.parse_page(page)[record_index]
            assert (got.delivery_us, got.payload) == (
                expected.delivery_us, expected.payload
            )


# -- file system create/append/delete vs. a dict model ----------------------

_FS_OPS = st.lists(
    st.tuples(st.sampled_from(["create", "append", "delete"]),
              st.integers(0, 1 << 30)),
    max_size=40,
)

_BLOCK = 2048


class TestFilesystemModel:
    @given(ops=_FS_OPS)
    @settings(max_examples=40, deadline=None)
    def test_remount_matches_dict_model(self, ops):
        sim = Simulator()
        raw = RawDisk(None, capacity=_BLOCK * 256)
        fs = MsuFileSystem(SpanVolume(raw, _BLOCK))
        model = {}  # name -> list of block payloads
        counter = 0

        for code, value in ops:
            if code == "create":
                name = f"f{counter}"
                counter += 1
                fs.create(name)
                model[name] = []
            elif code == "append" and model:
                name = sorted(model)[value % len(model)]
                payload = bytes([value % 251]) * _BLOCK
                fs.append_block_sync(fs.open(name), payload)
                model[name].append(payload)
            elif code == "delete" and model:
                name = sorted(model)[value % len(model)]
                fs.delete(name)
                del model[name]

        run_process(sim, fs.sync_metadata())
        mounted = run_process(sim, _mount(raw))
        assert sorted(h.name for h in mounted.list_files()) == sorted(model)
        for name, blocks in model.items():
            handle = mounted.open(name)
            assert handle.nblocks == len(blocks)
            for index, payload in enumerate(blocks):
                assert mounted.read_block_sync(handle, index) == payload
        report = check_filesystem(mounted, SMALL)
        # Raw payloads are not IB-tree pages, so the per-page walk flags
        # them; the structural checks (block ownership, bitmap, counts)
        # must still be clean.
        structural = [
            e for e in report.errors
            if "corrupt" not in e and "length" not in e
        ]
        assert structural == []


def _mount(raw):
    mounted = yield from MsuFileSystem.mount(SpanVolume(raw, _BLOCK))
    return mounted
