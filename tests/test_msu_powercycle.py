"""Full power cycle: sync metadata, crash, remount, replay from disk."""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.storage.check import check_filesystem
from repro.units import MPEG1_RATE

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


def build():
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
    cluster.coordinator.db.add_customer("user")
    packets = packetize_cbr(MpegEncoder(seed=1).bitstream(6.0), MPEG1_RATE, 1024)
    stream = MpegEncoder(seed=1).bitstream(6.0)
    cluster.load_content("movie", "mpeg1", packets)
    cluster.install_fast_scans("movie", stream, MPEG1_RATE, 1024, step=15)
    return sim, cluster, packets


class TestPowerCycle:
    def test_remount_recovers_all_files(self):
        sim, cluster, _ = build()
        msu = cluster.msus[0]
        disk = cluster.coordinator.db.content("movie").disk_id
        before = {f.name: f.blocks for f in msu.filesystems[disk].list_files()}

        def cycle():
            yield from msu.admin_sync_all()
            yield from msu.admin_remount()

        proc = sim.process(cycle())
        sim.run(until=60.0)
        assert proc.ok
        after_fs = msu.filesystems[disk]
        after = {f.name: f.blocks for f in after_fs.list_files()}
        assert after == before
        # Fast-scan links and roots survived the cycle.
        movie = after_fs.open("movie")
        assert movie.fast_forward == "movie.ff"
        assert movie.root is not None

    def test_remounted_filesystem_checks_clean(self):
        sim, cluster, _ = build()
        msu = cluster.msus[0]

        def cycle():
            yield from msu.admin_sync_all()
            yield from msu.admin_remount()

        proc = sim.process(cycle())
        sim.run(until=60.0)
        assert proc.ok
        for fs in msu.filesystems.values():
            report = check_filesystem(fs, SMALL)
            assert report.clean, report.errors

    def test_replay_after_crash_sync_remount(self):
        sim, cluster, packets = build()
        msu = cluster.msus[0]

        def sync():
            yield from msu.admin_sync_all()

        proc = sim.process(sync())
        sim.run(until=30.0)
        assert proc.ok
        cluster.fail_msu(0, crash=True)
        sim.run(until=sim.now + 0.5)

        def remount():
            yield from msu.admin_remount()

        proc = sim.process(remount())
        sim.run(until=sim.now + 30.0)
        assert proc.ok
        cluster.rejoin_msu(0)
        sim.run(until=sim.now + 0.5)
        client = Client(sim, cluster, "c0")

        def play():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_done(view)

        proc = sim.process(play())
        sim.run(until=sim.now + 90.0)
        assert proc.ok
        assert client.ports["tv"].stats.packets == len(packets)
