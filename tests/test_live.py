"""Live & time-shifted TV: channel ingest, fan-out, rewind-live.

End-to-end exercises of the live subsystem on a real cluster: the EPG
opens a channel whose broadcaster appends onto an MSU file while the
multicast fan-out follows the growing tail; viewers tune through the
ordinary play path, pause-live and rewind-live ride bounded unicast
patches over the time-shift ring and re-merge with the fan-out; rings
reclaim their own blocks; DVR channels survive sign-off as plain VoD;
and both Coordinator and MSU failures leave clean books behind.
"""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.errors import StorageError
from repro.failover import FailoverConfig
from repro.live import ChannelSpec, LiveConfig, LiveSource
from repro.net import messages as m
from repro.sim import Simulator
from repro.verify import builtin_registry

from tests.helpers import FAST, SMALL, make_packets, open_client


def build_live(
    lineup,
    *,
    n_msus=1,
    ring_seconds=8.0,
    surf_rate=0.0,
    surf_burst=8.0,
    off_air_grace=6.0,
    failover=None,
    seed=3,
):
    """A cluster with a live lineup and one armed LiveSource per feed host."""
    sim = Simulator()
    live = LiveConfig(
        lineup=tuple(lineup), ring_seconds=ring_seconds,
        surf_rate=surf_rate, surf_burst=surf_burst,
        off_air_grace=off_air_grace,
    )
    fo = FailoverConfig(heartbeat=FAST) if failover == "fast" else failover
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=n_msus, ibtree_config=SMALL, live=live, failover=fo,
        ),
    )
    cluster.coordinator.db.add_customer("user")
    sources = {}
    for spec in lineup:
        source = sources.get(spec.source_host)
        if source is None:
            source = LiveSource(sim, cluster, spec.source_host)
            sources[spec.source_host] = source
        source.add_feed(spec.name, make_packets(spec.duration_seconds, seed=seed))
    return sim, cluster, sources


def assert_drained(cluster):
    """Every registered drain invariant holds on the settled cluster."""
    problems = builtin_registry().check(cluster, "drain")
    assert problems == []


class TestChannelLifecycle:
    def test_epg_opens_and_closes_unwatched_channel(self):
        spec = ChannelSpec("news", "mpeg1", "feed0", start_at=0.5,
                           duration_seconds=4.0)
        sim, cluster, sources = build_live([spec], ring_seconds=2.0)
        sim.run(until=12.0)
        mgr = cluster.coordinator.live_manager
        assert mgr.channels_opened == 1
        assert mgr.channels_closed == 1
        assert mgr.channels_failed == 0
        assert mgr.channels == {}
        source = sources["feed0"]
        assert source.broadcasts_started == 1
        assert source.broadcasts_finished == 1
        assert source.packets_sent > 0
        # A pure-live ring has no afterlife: title gone, file gone.
        assert "news" not in cluster.coordinator.db.contents
        msu = cluster.msus[0]
        assert msu.live == {}
        assert not any(
            fs.exists("news") for fs in msu.filesystems.values()
        )
        assert_drained(cluster)

    def test_ring_trims_behind_window_during_broadcast(self):
        spec = ChannelSpec("news", "mpeg1", "feed0", start_at=0.5,
                           duration_seconds=10.0)
        sim, cluster, _ = build_live([spec], ring_seconds=2.0)
        sim.run(until=8.0)  # mid-broadcast
        msu = cluster.msus[0]
        assert len(msu.live) == 1
        live = next(iter(msu.live.values()))
        assert live.ring_blocks > 0
        assert live.trims > 0
        assert live.pages_trimmed > 0
        # The resident span never outgrows the window (+1 for the page
        # that triggers the next trim).
        assert live.handle.live_span <= live.ring_blocks + 1
        assert live.handle.trimmed > 0
        # Reclaimed pages really are gone.
        with pytest.raises(StorageError, match="reclaimed"):
            msu.filesystems[
                next(iter(msu.filesystems))
            ].read_block_sync(live.handle, 0)
        sim.run(until=20.0)
        assert msu.live == {}
        assert_drained(cluster)

    def test_dvr_channel_becomes_vod_after_signoff(self):
        spec = ChannelSpec("match", "mpeg1", "feed0", start_at=0.5,
                           duration_seconds=5.0, record=True)
        sim, cluster, _ = build_live([spec])
        sim.run(until=10.0)
        mgr = cluster.coordinator.live_manager
        assert mgr.channels == {}
        msu = cluster.msus[0]
        assert msu.live == {}
        # The recording survived as ordinary VoD content...
        entry = cluster.coordinator.db.contents["match"]
        fs = msu.filesystems[entry.disk_id]
        handle = fs.open("match")
        assert handle.trimmed == 0
        assert handle.root is not None
        # ...and a client can play it back start to finish.
        client = Client(sim, cluster, "c0")

        def replay():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("match", "tv")
            yield from client.wait_ready(view)
            return view

        proc = sim.process(replay())
        view = sim.run_until_event(proc, limit=sim.now + 15.0)
        assert view.ready_streams
        sim.run(until=sim.now + 15.0)
        assert client.ports["tv"].stats.packets > 0


class TestViewer:
    def test_pause_resume_rewind_merge(self):
        spec = ChannelSpec("news", "mpeg1", "feed0", start_at=0.5,
                           duration_seconds=14.0)
        sim, cluster, _ = build_live([spec], ring_seconds=8.0)
        client = open_client(sim, cluster)
        marks = {}

        def scenario():
            yield from client.register_port("tv", "mpeg1")
            yield sim.timeout(2.0)  # the channel is on the air by now
            view = yield from client.play("news", "tv")
            yield from client.wait_ready(view)
            marks["ready"] = sim.now
            yield sim.timeout(2.0)
            client.vcr(view.group_id, m.VCR_PAUSE)
            yield sim.timeout(1.5)
            client.vcr(view.group_id, m.VCR_PLAY)  # resume = catch-up patch
            yield sim.timeout(2.0)
            client.vcr(view.group_id, m.VCR_REWIND, position_seconds=3.0)
            yield sim.timeout(3.0)
            client.quit(view.group_id)
            marks["quit"] = sim.now

        sim.process(scenario())
        sim.run(until=30.0)
        assert "ready" in marks and "quit" in marks
        mgr = cluster.coordinator.live_manager
        assert mgr.viewers_joined == 1
        # Pause->resume and the explicit rewind each opened a ring patch
        # inside the window; both re-merged with the fan-out.
        assert mgr.rewinds == 2
        assert mgr.rewind_hits == 2
        assert mgr.merges == 2
        assert mgr.channels == {}
        port = client.ports["tv"]
        assert port.channel_stats.packets > 0   # the multicast fan-out
        assert port.unicast_stats.packets > 0   # the time-shift patches
        msu = cluster.msus[0]
        assert msu.live == {}
        assert "news" not in cluster.coordinator.db.contents
        assert_drained(cluster)

    def test_rewind_past_window_clamps_and_misses(self):
        spec = ChannelSpec("news", "mpeg1", "feed0", start_at=0.5,
                           duration_seconds=10.0)
        sim, cluster, _ = build_live([spec], ring_seconds=1.5)
        client = open_client(sim, cluster)

        def scenario():
            yield from client.register_port("tv", "mpeg1")
            yield sim.timeout(2.0)
            view = yield from client.play("news", "tv")
            yield from client.wait_ready(view)
            yield sim.timeout(4.0)
            # Far past the ring window: clamped to its oldest page.
            client.vcr(view.group_id, m.VCR_REWIND, position_seconds=30.0)
            yield sim.timeout(2.0)
            client.quit(view.group_id)

        sim.process(scenario())
        sim.run(until=25.0)
        mgr = cluster.coordinator.live_manager
        assert mgr.rewinds == 1
        assert mgr.rewind_hits == 0  # the asked-for page was reclaimed
        assert mgr.channels == {}
        # The clamped patch still delivered the window's oldest media.
        assert client.ports["tv"].unicast_stats.packets > 0
        assert_drained(cluster)

    def test_surf_gate_throttles_and_drains(self):
        spec = ChannelSpec("news", "mpeg1", "feed0", start_at=0.5,
                           duration_seconds=16.0)
        sim, cluster, _ = build_live(
            [spec], ring_seconds=4.0, surf_rate=0.5, surf_burst=1.0,
        )
        viewers = [open_client(sim, cluster, name=f"c{i}") for i in range(3)]
        joined = []

        def watch(client, tune_at, dwell):
            yield from client.register_port("tv", "mpeg1")
            yield sim.timeout(max(0.0, tune_at - sim.now))
            view = yield from client.play("news", "tv")
            yield from client.wait_ready(view)
            joined.append((client.name, sim.now))
            yield sim.timeout(dwell)
            client.quit(view.group_id)

        sim.process(watch(viewers[0], 2.0, 3.0))
        sim.process(watch(viewers[1], 2.1, 3.0))
        sim.process(watch(viewers[2], 2.2, 3.0))
        sim.run(until=30.0)
        mgr = cluster.coordinator.live_manager
        # One token in the bucket: the other tunes parked on the queue
        # and drained as earlier viewers quit and tokens accrued.
        assert mgr.surf_throttled >= 2
        assert mgr.viewers_joined == 3
        assert len(joined) == 3
        assert [name for name, _ in joined] == ["c0", "c1", "c2"]
        # The parked tunes joined later than a token-free gate would allow.
        assert joined[-1][1] > joined[0][1] + 1.0
        assert mgr.channels == {}
        assert_drained(cluster)


class TestFailures:
    def test_coordinator_restart_readopts_channel(self):
        spec = ChannelSpec("news", "mpeg1", "feed0", start_at=0.5,
                           duration_seconds=10.0)
        sim, cluster, sources = build_live([spec], ring_seconds=6.0)
        client = open_client(sim, cluster)

        def scenario():
            yield from client.register_port("tv", "mpeg1")
            yield sim.timeout(2.0)
            view = yield from client.play("news", "tv")
            yield from client.wait_ready(view)
            return view

        proc = sim.process(scenario())
        sim.run_until_event(proc, limit=10.0)
        before = client.ports["tv"].stats.packets
        sim.at(4.0, cluster.crash_coordinator)
        sim.at(5.0, cluster.restart_coordinator)
        sim.run(until=7.0)
        mgr = cluster.coordinator.live_manager
        # The restarted Coordinator re-adopted the on-air channel from
        # the journal instead of re-firing its EPG slot.
        assert len(mgr.channels) == 1
        assert mgr.fired == {0}
        assert mgr.channels_opened == 1  # replayed count; not re-opened
        record = next(iter(mgr.channels.values()))
        assert record.content_name == "news"
        # No duplicate LiveOpen reached the MSU.
        assert len(cluster.msus[0].live) == 1
        # The viewer's media never stopped flowing through the outage.
        assert client.ports["tv"].stats.packets > before
        sim.run(until=25.0)
        assert mgr.channels == {}
        assert sources["feed0"].broadcasts_finished == 1
        assert "news" not in cluster.coordinator.db.contents
        assert_drained(cluster)

    def test_msu_crash_forces_channel_closed(self):
        spec = ChannelSpec("news", "mpeg1", "feed0", start_at=0.5,
                           duration_seconds=10.0)
        sim, cluster, _ = build_live(
            [spec], ring_seconds=4.0, n_msus=2, failover="fast",
        )
        sim.run(until=3.0)
        mgr = cluster.coordinator.live_manager
        assert len(mgr.channels) == 1
        home = next(iter(mgr.channels.values())).msu_name
        index = [msu.name for msu in cluster.msus].index(home)
        cluster.fail_msu(index, crash=True)
        sim.run(until=8.0)
        # The channel went dark with its MSU: books and title cleaned up
        # with nothing to deallocate on the dead machine.
        assert mgr.channels == {}
        assert mgr.channels_closed == 1
        assert "news" not in cluster.coordinator.db.contents
        coord = cluster.coordinator
        assert all(
            group.allocations == {} or gid in coord.groups
            for gid, group in coord.groups.items()
        )
        state = coord.db.msus[home]
        assert not state.available
