"""Coverage of small corners: errors, disk writes, reader helpers."""

import pytest

from repro import errors
from repro.hardware import Machine, MachineParams
from repro.sim import Simulator
from repro.storage import (
    IBTreeConfig,
    IBTreeReader,
    IBTreeWriter,
    MsuFileSystem,
    PacketRecord,
    RawDisk,
    SpanVolume,
)
from repro.units import BLOCK_SIZE
from tests.conftest import run_process

SMALL = IBTreeConfig(data_page_size=2048, internal_page_size=256, max_keys=8)


class TestErrorHierarchy:
    def test_all_errors_are_calliope_errors(self):
        for name in (
            "AdmissionError", "TypeMismatchError", "UnknownContentError",
            "UnknownPortError", "StorageError", "OutOfSpaceError",
            "ProtocolError", "MSUUnavailableError", "VCRError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.CalliopeError)

    def test_out_of_space_is_storage_error(self):
        assert issubclass(errors.OutOfSpaceError, errors.StorageError)


class TestDiskWrites:
    def test_write_transfer_times_comparable_to_reads(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        disk = machine.disks[0]
        run_process(sim, disk.transfer(0, BLOCK_SIZE, write=True))
        write_time = sim.now
        sim2 = Simulator()
        machine2 = Machine(sim2, MachineParams(disks_per_hba=(1,)))
        run_process(sim2, machine2.disks[0].transfer(0, BLOCK_SIZE, write=False))
        assert write_time == pytest.approx(sim2.now, rel=0.5)

    def test_write_updates_stats(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        disk = machine.disks[0]
        run_process(sim, disk.transfer(BLOCK_SIZE * 7, BLOCK_SIZE, write=True))
        assert disk.bytes_transferred == BLOCK_SIZE


class TestReaderHelpers:
    def _pages(self, n=40):
        writer = IBTreeWriter(SMALL)
        pages = []
        for i in range(n):
            page = writer.feed(PacketRecord(i * 1000, bytes([i % 256]) * 120))
            if page:
                pages.append(page)
        tail, root = writer.finish()
        pages.extend(tail)
        return pages

    def test_iter_records_pure_parsing(self):
        pages = self._pages()
        fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 64), 2048))
        handle = fs.create("x")
        reader = IBTreeReader(handle, SMALL)
        records = list(reader.iter_records(iter(pages)))
        assert len(records) == 40
        assert [r.delivery_us for r in records] == [i * 1000 for i in range(40)]

    def test_scan_empty_file(self, sim):
        fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 16), 2048))
        handle = fs.create("empty")
        out = run_process(sim, IBTreeReader(handle, SMALL).scan())
        assert out == []

    def test_seek_empty_file(self, sim):
        fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 16), 2048))
        handle = fs.create("empty")
        assert run_process(sim, IBTreeReader(handle, SMALL).seek(0)) is None


class TestChannelHooks:
    def test_on_message_accounting_hook(self, sim):
        from repro.net import ControlChannel

        channel = ControlChannel(sim, "a", "b", latency=0.001)
        seen = []
        channel.on_message = lambda sender, msg: seen.append((sender, msg))
        channel.send("a", "hello")
        assert seen == [("a", "hello")]

    def test_close_idempotent(self, sim):
        from repro.net import ControlChannel

        channel = ControlChannel(sim, "a", "b")
        channel.close()
        channel.close()  # no error, no duplicate wakeups beyond the first
        sim.run()
