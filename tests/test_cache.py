"""The MSU page cache: pool accounting, interval/prefix policy, admission.

Unit tests for the cache subsystem (``repro.cache``), the popularity-aware
cache-covered placement in admission control, and one short end-to-end run
showing a single disk sustaining more streams with the cache on.
"""

import pytest

from repro.cache.interval import IntervalCache
from repro.cache.manager import CacheConfig, MsuPageCache
from repro.cache.pool import BufferPool
from repro.cache.prefix import PrefixCache
from repro.media.content import ContentType
from repro.units import MPEG1_RATE

from tests.helpers import build_admission_db

KEY = ("sd0", "movie")
PAGE = b"x" * 1024
MPEG = ContentType("mpeg1", MPEG1_RATE, MPEG1_RATE)


class TestBufferPool:
    def test_reserve_and_release(self):
        pool = BufferPool(100)
        assert pool.try_reserve(60)
        assert pool.used == 60 and pool.free == 40
        pool.release(60)
        assert pool.used == 0 and pool.peak == 60

    def test_denies_over_capacity(self):
        pool = BufferPool(100)
        assert pool.try_reserve(100)
        assert not pool.try_reserve(1)
        assert pool.denied == 1

    def test_zero_capacity_denies_everything(self):
        pool = BufferPool(0)
        assert not pool.try_reserve(1)
        assert pool.occupancy == 0.0

    def test_over_release_raises(self):
        pool = BufferPool(100)
        pool.try_reserve(10)
        with pytest.raises(ValueError):
            pool.release(11)


class TestIntervalCache:
    def test_fill_without_trailing_stream_not_retained(self):
        cache = IntervalCache(BufferPool(1 << 20))
        assert not cache.fill(KEY, 0, PAGE, producer_id=1)
        assert cache.retained_pages() == 0

    def test_leader_page_retained_for_follower(self):
        cache = IntervalCache(BufferPool(1 << 20))
        cache.observe(KEY, 2, 0)  # follower at the start
        assert cache.fill(KEY, 3, PAGE, producer_id=1)
        assert cache.pool.used == len(PAGE)
        assert cache.lookup(KEY, 3, stream_id=2) == PAGE
        assert cache.hits == 1
        # The only claimant consumed it: evicted, pool drained.
        assert cache.retained_pages() == 0
        assert cache.pool.used == 0

    def test_page_survives_until_every_claimant_reads(self):
        cache = IntervalCache(BufferPool(1 << 20))
        cache.observe(KEY, 2, 0)
        cache.observe(KEY, 3, 1)
        cache.fill(KEY, 5, PAGE, producer_id=1)
        cache.lookup(KEY, 5, stream_id=2)
        assert cache.retained_pages() == 1  # stream 3 still owed it
        cache.lookup(KEY, 5, stream_id=3)
        assert cache.retained_pages() == 0

    def test_free_rider_does_not_evict_others_claims(self):
        cache = IntervalCache(BufferPool(1 << 20))
        cache.observe(KEY, 2, 0)
        cache.fill(KEY, 4, PAGE, producer_id=1)
        # Stream 9 registered late: it may read the page (free ride)
        # without holding a claim, and stream 2's claim keeps it alive.
        assert cache.lookup(KEY, 4, stream_id=9) == PAGE
        assert cache.retained_pages() == 1

    def test_forget_stream_releases_claims_and_pool(self):
        cache = IntervalCache(BufferPool(1 << 20))
        cache.observe(KEY, 2, 0)
        cache.fill(KEY, 3, PAGE, producer_id=1)
        cache.forget_stream(2)
        assert cache.retained_pages() == 0
        assert cache.pool.used == 0
        assert cache.evicted == 1

    def test_pool_full_drops_fill(self):
        cache = IntervalCache(BufferPool(len(PAGE)))
        cache.observe(KEY, 2, 0)
        assert cache.fill(KEY, 3, PAGE, producer_id=1)
        assert not cache.fill(KEY, 4, PAGE, producer_id=1)
        assert cache.pool.denied == 1

    def test_invalidate_drops_whole_file(self):
        cache = IntervalCache(BufferPool(1 << 20))
        cache.observe(KEY, 2, 0)
        cache.fill(KEY, 3, PAGE, producer_id=1)
        cache.invalidate(KEY)
        assert cache.retained_pages() == 0
        assert cache.pool.used == 0
        assert cache.lookup(KEY, 3, stream_id=2) is None


class TestPrefixCache:
    def test_pin_and_lookup(self):
        cache = PrefixCache(BufferPool(1 << 20), max_pages_per_title=2)
        assert cache.pin(KEY, 0, PAGE)
        assert cache.pin(KEY, 1, PAGE)
        assert not cache.pin(KEY, 2, PAGE)  # per-title budget
        assert cache.lookup(KEY, 0) == PAGE
        assert cache.lookup(KEY, 2) is None
        assert cache.hits == 1
        assert cache.pinned_count(KEY) == 2

    def test_repin_is_idempotent(self):
        cache = PrefixCache(BufferPool(1 << 20))
        assert cache.pin(KEY, 0, PAGE)
        assert cache.pin(KEY, 0, PAGE)
        assert cache.pool.used == len(PAGE)

    def test_unpin_returns_pool_bytes(self):
        cache = PrefixCache(BufferPool(1 << 20))
        cache.pin(KEY, 0, PAGE)
        cache.pin(KEY, 1, PAGE)
        assert cache.unpin(KEY) == 2
        assert cache.pool.used == 0
        assert cache.pinned_pages == 0


class TestMsuPageCache:
    def test_prefix_consulted_before_interval(self):
        cache = MsuPageCache(CacheConfig(pool_bytes=1 << 20))
        cache.pin_prefix(KEY, 0, PAGE)
        assert cache.lookup(KEY, 0, stream_id=2) == PAGE
        assert cache.prefix.hits == 1 and cache.interval.hits == 0
        assert cache.slots_saved == 1

    def test_miss_counted(self):
        cache = MsuPageCache(CacheConfig(pool_bytes=1 << 20))
        assert cache.lookup(KEY, 7, stream_id=2) is None
        assert cache.misses == 1
        assert cache.snapshot().hit_ratio == 0.0

    def test_fill_then_hit_roundtrip(self):
        cache = MsuPageCache(CacheConfig(pool_bytes=1 << 20))
        cache.interval.observe(KEY, 2, 0)  # add_play registers the follower
        cache.fill(KEY, 0, PAGE, producer_id=1)
        assert cache.lookup(KEY, 0, stream_id=2) == PAGE
        assert cache.bytes_served == len(PAGE)

    def test_clear_drops_pages_and_pool(self):
        cache = MsuPageCache(CacheConfig(pool_bytes=1 << 20))
        cache.pin_prefix(KEY, 0, PAGE)
        cache.clear()
        assert cache.pool.used == 0
        assert cache.lookup(KEY, 0, stream_id=2) is None

    def test_copy_time(self):
        cache = MsuPageCache(CacheConfig(copy_rate=1e6))
        assert cache.copy_time(1000) == pytest.approx(1e-3)


class TestInvalidateWithActiveReaders:
    """Deleting a title must not leak pool bytes or serve stale pages to
    readers that are mid-flight — a trailing viewer on the interval cache
    or a multicast patch stream walking the pinned prefix."""

    def test_invalidate_mid_patch_drops_prefix_without_leak(self):
        cache = MsuPageCache(CacheConfig(pool_bytes=1 << 20))
        for index in range(4):
            assert cache.pin_prefix(KEY, index, PAGE)
        # A patch reader is part-way through the pinned prefix...
        assert cache.lookup(KEY, 0, stream_id=2) == PAGE
        assert cache.lookup(KEY, 1, stream_id=2) == PAGE
        cache.invalidate(KEY)
        # ...the rest of its walk misses to disk instead of going stale.
        assert cache.lookup(KEY, 2, stream_id=2) is None
        assert cache.misses == 1
        assert cache.prefix.pinned_pages == 0
        assert cache.pool.used == 0
        # The reader ending later must not over-release anything.
        cache.forget_stream(2)
        assert cache.pool.used == 0

    def test_invalidate_mid_trail_releases_unconsumed_claims(self):
        cache = IntervalCache(BufferPool(1 << 20))
        cache.observe(KEY, 2, 0)  # trailing reader at the start
        for index in range(3):
            assert cache.fill(KEY, index, PAGE, producer_id=1)
        assert cache.lookup(KEY, 0, stream_id=2) == PAGE
        assert cache.pool.used == 2 * len(PAGE)
        cache.invalidate(KEY)
        # Pages the trailer had not reached yet are gone, pool and all.
        assert cache.retained_pages() == 0
        assert cache.pool.used == 0
        assert cache.lookup(KEY, 1, stream_id=2) is None
        # The trailer's eventual departure finds nothing left to release.
        cache.forget_stream(2)
        assert cache.pool.used == 0

    def test_fill_after_invalidate_not_retained_for_stale_positions(self):
        cache = IntervalCache(BufferPool(1 << 20))
        cache.observe(KEY, 2, 0)
        cache.fill(KEY, 1, PAGE, producer_id=1)
        cache.invalidate(KEY)
        # Positions died with the file: a new leader's pages are not
        # retained on behalf of readers of the deleted incarnation.
        assert not cache.fill(KEY, 1, PAGE, producer_id=1)
        assert cache.pool.used == 0
        # A reader of the *new* file registers afresh and is served.
        cache.observe(KEY, 3, 0)
        assert cache.fill(KEY, 1, PAGE, producer_id=1)
        assert cache.lookup(KEY, 1, stream_id=3) == PAGE

    def test_repin_after_invalidate_serves_fresh_content(self):
        cache = MsuPageCache(CacheConfig(pool_bytes=1 << 20))
        cache.pin_prefix(KEY, 0, PAGE)
        cache.invalidate(KEY)
        fresh = b"y" * len(PAGE)
        assert cache.pin_prefix(KEY, 0, fresh)
        assert cache.lookup(KEY, 0, stream_id=2) == fresh
        assert cache.pool.used == len(fresh)


class TestCacheCoveredAdmission:
    def build(self, cache_bps=4.2e6):
        return build_admission_db(cache_bps)

    def exhaust_disk(self, admission, entry):
        allocs = []
        while True:
            alloc = admission.place_read(entry, MPEG)
            if alloc is None or alloc.cache_covered:
                assert alloc is None
                break
            allocs.append(alloc)
        return allocs

    def test_second_chance_when_disk_exhausted(self):
        db, admission, entry = self.build()
        disk = db.disk("msu0", "msu0.sd0")
        raw = int(disk.bandwidth_capacity // MPEG1_RATE)
        for _ in range(raw):
            alloc = admission.place_read(entry, MPEG)
            assert alloc is not None and not alloc.cache_covered
        covered = admission.place_read(entry, MPEG)
        assert covered is not None and covered.cache_covered
        assert admission.cache_admitted == 1
        assert db.msus["msu0"].cache_used == MPEG1_RATE
        assert disk.bandwidth_used == pytest.approx(raw * MPEG1_RATE)

    def test_no_second_chance_without_active_leader(self):
        db, admission, entry = self.build()
        disk = db.disk("msu0", "msu0.sd0")
        disk.bandwidth_used = disk.bandwidth_capacity  # exhausted, idle
        assert entry.active_at(("msu0", "msu0.sd0")) == 0
        assert admission.place_read(entry, MPEG) is None

    def test_no_second_chance_without_cache(self):
        db, admission, entry = self.build(cache_bps=0.0)
        disk = db.disk("msu0", "msu0.sd0")
        raw = int(disk.bandwidth_capacity // MPEG1_RATE)
        for _ in range(raw):
            assert admission.place_read(entry, MPEG) is not None
        assert admission.place_read(entry, MPEG) is None

    def test_release_refunds_cache_not_disk(self):
        db, admission, entry = self.build()
        disk = db.disk("msu0", "msu0.sd0")
        raw_allocs = []
        while disk.bandwidth_free() >= MPEG1_RATE:
            raw_allocs.append(admission.place_read(entry, MPEG))
        covered = admission.place_read(entry, MPEG)
        used_before = disk.bandwidth_used
        admission.release(covered)
        assert db.msus["msu0"].cache_used == 0.0
        assert disk.bandwidth_used == used_before  # disk untouched
        for alloc in raw_allocs:
            admission.release(alloc)
        assert disk.bandwidth_used == 0.0
        assert entry.active == {}

    def test_delivery_cap_still_binds_cache_grants(self):
        db, admission, entry = self.build(cache_bps=1e12)
        state = db.msus["msu0"]
        granted = 0
        while admission.place_read(entry, MPEG) is not None:
            granted += 1
        assert granted == int(state.delivery_capacity // MPEG1_RATE)


class TestEndToEnd:
    def test_cache_lifts_single_disk_concurrency(self):
        from repro.experiments.cache import run_cache

        off, on = run_cache(duration=60.0)
        assert on.concurrent_peak >= 1.2 * off.concurrent_peak
        assert on.snapshot.hit_ratio > 0.2
        assert on.snapshot.slots_saved > 0
        assert on.cache_admitted > 0
        assert on.pages_from_cache == on.snapshot.slots_saved
