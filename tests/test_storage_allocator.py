"""Bitmap allocator: invariants, reservations, property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfSpaceError, StorageError
from repro.storage import BitmapAllocator


class TestAllocation:
    def test_alloc_returns_distinct_blocks(self):
        alloc = BitmapAllocator(10)
        blocks = [alloc.alloc() for _ in range(10)]
        assert sorted(blocks) == list(range(10))

    def test_full_disk_raises(self):
        alloc = BitmapAllocator(2)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(OutOfSpaceError):
            alloc.alloc()

    def test_free_then_realloc(self):
        alloc = BitmapAllocator(3)
        block = alloc.alloc()
        alloc.free(block)
        assert alloc.free_blocks == 3
        assert not alloc.is_allocated(block)

    def test_double_free_rejected(self):
        alloc = BitmapAllocator(3)
        block = alloc.alloc()
        alloc.free(block)
        with pytest.raises(StorageError):
            alloc.free(block)

    def test_bounds_checked(self):
        alloc = BitmapAllocator(3)
        with pytest.raises(StorageError):
            alloc.free(5)
        with pytest.raises(ValueError):
            BitmapAllocator(0)

    def test_alloc_many_rolls_back_on_failure(self):
        alloc = BitmapAllocator(3)
        with pytest.raises(OutOfSpaceError):
            alloc.alloc_many(4)
        assert alloc.used_blocks == 0

    def test_alloc_many(self):
        alloc = BitmapAllocator(5)
        blocks = alloc.alloc_many(3)
        assert len(set(blocks)) == 3
        assert alloc.used_blocks == 3


class TestReservations:
    def test_reserve_shrinks_free_pool(self):
        alloc = BitmapAllocator(10)
        reservation = alloc.reserve(4)
        assert alloc.free_blocks == 6
        assert alloc.reserved_blocks == 4
        reservation.release()
        assert alloc.free_blocks == 10

    def test_reserve_beyond_free_raises(self):
        alloc = BitmapAllocator(4)
        alloc.reserve(3)
        with pytest.raises(OutOfSpaceError):
            alloc.reserve(2)

    def test_alloc_against_reservation(self):
        alloc = BitmapAllocator(10)
        reservation = alloc.reserve(2)
        alloc.alloc(reservation)
        alloc.alloc(reservation)
        with pytest.raises(OutOfSpaceError):
            alloc.alloc(reservation)
        assert alloc.used_blocks == 2
        assert alloc.reserved_blocks == 0

    def test_partial_release_returns_unused(self):
        """The paper: "If the client overestimates the length of the
        recording, the unused space will be returned" (§2.2)."""
        alloc = BitmapAllocator(10)
        reservation = alloc.reserve(5)
        alloc.alloc(reservation)
        reservation.release()
        assert alloc.used_blocks == 1
        assert alloc.free_blocks == 9
        assert alloc.reserved_blocks == 0

    def test_released_reservation_rejects_use(self):
        alloc = BitmapAllocator(10)
        reservation = alloc.reserve(2)
        reservation.release()
        with pytest.raises(OutOfSpaceError):
            alloc.alloc(reservation)

    def test_negative_reservation_rejected(self):
        alloc = BitmapAllocator(10)
        with pytest.raises(ValueError):
            alloc.reserve(-1)

    def test_double_release_does_not_over_credit(self):
        alloc = BitmapAllocator(10)
        reservation = alloc.reserve(4)
        reservation.release()
        reservation.release()  # idempotent: nothing left to return
        assert alloc.free_blocks == 10
        assert alloc.reserved_blocks == 0

    def test_zero_length_reservation(self):
        alloc = BitmapAllocator(10)
        reservation = alloc.reserve(0)
        assert alloc.free_blocks == 10
        with pytest.raises(OutOfSpaceError):
            alloc.alloc(reservation)  # nothing was promised
        reservation.release()
        assert alloc.free_blocks == 10
        assert alloc.reserved_blocks == 0

    def test_consume_after_release_raises(self):
        alloc = BitmapAllocator(10)
        reservation = alloc.reserve(2)
        reservation.release()
        with pytest.raises(StorageError):
            reservation.consume()

    def test_release_after_full_consumption(self):
        alloc = BitmapAllocator(10)
        reservation = alloc.reserve(2)
        alloc.alloc(reservation)
        alloc.alloc(reservation)
        reservation.release()  # nothing unconsumed to return
        assert alloc.used_blocks == 2
        assert alloc.free_blocks == 8
        assert alloc.reserved_blocks == 0


class TestProperties:
    @given(
        ops=st.lists(
            st.one_of(
                st.just(("alloc",)),
                st.tuples(st.just("free"), st.integers(0, 30)),
                st.tuples(st.just("reserve"), st.integers(0, 8)),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_accounting_invariants(self, ops):
        alloc = BitmapAllocator(30)
        held = []
        reservations = []
        for op in ops:
            if op[0] == "alloc":
                try:
                    held.append(alloc.alloc())
                except OutOfSpaceError:
                    assert alloc.free_blocks == 0
            elif op[0] == "free":
                if op[1] < len(held):
                    alloc.free(held.pop(op[1] % len(held)))
            else:
                try:
                    reservations.append(alloc.reserve(op[1]))
                except OutOfSpaceError:
                    assert alloc.free_blocks < op[1]
            # Core invariant: used + reserved + free == total, no aliasing.
            assert alloc.used_blocks + alloc.reserved_blocks + alloc.free_blocks == 30
            assert alloc.used_blocks == len(held)
            assert len(set(held)) == len(held)
