"""Unit conversions, lateness reporting and message defaults."""

import pytest

from repro import units
from repro.metrics import LatenessCollector, format_cdf_table, quantile_summary
from repro.net import messages as m


class TestUnits:
    def test_bitrate_conversions(self):
        assert units.mbit_per_s(1.5) == pytest.approx(187_500.0)
        assert units.kbit_per_s(650.0) == pytest.approx(81_250.0)

    def test_byte_rate_conversions(self):
        assert units.mbyte_per_s(4.7) == pytest.approx(4_700_000.0)
        assert units.to_mbyte_per_s(4_700_000.0) == pytest.approx(4.7)

    def test_time_helpers(self):
        assert units.ms(10.0) == pytest.approx(0.010)
        assert units.us(250.0) == pytest.approx(0.000250)

    def test_paper_constants(self):
        assert units.BLOCK_SIZE == 256 * 1024
        assert units.INTERNAL_PAGE_SIZE == 28 * 1024
        assert units.INTERNAL_PAGE_KEYS == 1024
        assert units.MPEG1_RATE == 187_500
        assert units.CBR_PACKET_SIZE == 4096

    def test_block_covers_over_a_second(self):
        """The duty-cycle premise: one block is >1 s of 1.5 Mbit/s video."""
        assert units.BLOCK_SIZE / units.MPEG1_RATE > 1.0


class TestLatenessCollector:
    def test_empty_collector(self):
        collector = LatenessCollector()
        assert collector.percent_within(50) == 100.0
        assert collector.max_lateness_ms() == 0.0
        cdf = collector.cdf()
        assert cdf.count == 0
        assert cdf.fraction_within(0) == 1.0

    def test_early_packets_land_in_bin_zero(self):
        collector = LatenessCollector()
        collector.record(deadline=1.0, sent_at=0.9)  # early
        collector.record(deadline=1.0, sent_at=1.0)  # exactly on time
        cdf = collector.cdf()
        assert cdf.fraction_within(0) == 1.0

    def test_cdf_is_monotone(self):
        collector = LatenessCollector()
        for lateness in [0.0, 0.01, 0.04, 0.2, 0.9]:
            collector.record(0.0, lateness)
        cdf = collector.cdf()
        values = [cdf.fraction_within(t) for t in (0, 10, 50, 200, 1000)]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_overflow_bin_clamped(self):
        collector = LatenessCollector()
        collector.record(0.0, 5.0)  # 5000 ms late
        cdf = collector.cdf(max_ms=1000)
        assert cdf.fraction_within(1000) == 1.0
        assert cdf.max_late_ms == pytest.approx(5000.0)

    def test_percent_within(self):
        collector = LatenessCollector()
        collector.record(0.0, 0.01)
        collector.record(0.0, 0.10)
        assert collector.percent_within(50) == pytest.approx(50.0)


class TestReportFormatting:
    def _cdf(self, latenesses):
        collector = LatenessCollector()
        for lateness in latenesses:
            collector.record(0.0, lateness)
        return collector.cdf()

    def test_table_contains_all_curves(self):
        curves = {
            "fast": self._cdf([0.001] * 10),
            "slow": self._cdf([0.2] * 10),
        }
        text = format_cdf_table(curves)
        assert "fast" in text and "slow" in text
        assert "count" in text and "max ms" in text

    def test_quantile_summary_keys(self):
        summary = dict(quantile_summary(self._cdf([0.01, 0.06])))
        assert summary["within 50 ms (%)"] == pytest.approx(50.0)
        assert "max lateness (ms)" in summary


class TestMessageDefaults:
    def test_request_ids_default_zero(self):
        assert m.PlayRequest(1, "c", "p").request_id == 0
        assert m.StreamScheduled(1, "msu0").request_id == 0

    def test_stream_ready_defaults(self):
        ready = m.StreamReady(1, "msu0")
        assert ready.stream_id == -1
        assert ready.record_address is None
        assert ready.group_size == 1

    def test_vcr_constants_distinct(self):
        commands = {
            m.VCR_PLAY, m.VCR_PAUSE, m.VCR_SEEK, m.VCR_FAST_FORWARD,
            m.VCR_FAST_BACKWARD, m.VCR_NORMAL, m.VCR_QUIT,
        }
        assert len(commands) == 7

    def test_messages_are_frozen(self):
        request = m.PlayRequest(1, "c", "p")
        with pytest.raises(Exception):
            request.content_name = "other"
