"""Determinism equivalence between the heap and timer-wheel engines.

The engine overhaul (DESIGN.md §13) replaced the kernel's binary heap
with a hierarchical timer wheel.  Correctness claim: both engines execute
*exactly* the same schedule — every queue entry fires at the same
``(time, seq)`` and in the same global order — so every experiment,
chaos plan and regression baseline in the repo is engine-independent.

This module enforces the claim three ways:

* golden traces: representative cluster scenarios (VoD with VCR ops,
  multicast channel formation, MSU crash/failover, live TV) run on both
  engines with the kernel's trace hook recording every executed entry as
  ``(time, seq, event-kind)``; the traces must be identical,
* a Hypothesis oracle: random push/pop sequences against the
  :class:`TimerWheel` must pop in exactly the reference
  :class:`HeapScheduler` order, across time scales that cross the
  wheel's bucket granularity and far-horizon window, and
* random process workloads: Hypothesis-generated mixes of timeouts,
  zero-delay schedules, events and interrupts traced on both engines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live import ChannelSpec, LiveConfig, LiveSource
from repro.net import messages as m
from repro.sim import HeapScheduler, Simulator, TimerWheel
from tests.helpers import MCAST, build_cluster, make_packets, open_client

# ---------------------------------------------------------------------------
# golden traces
# ---------------------------------------------------------------------------


def _kind(fn, args) -> str:
    """A stable label for one queue entry (no object ids, no addresses)."""
    owner = getattr(fn, "__self__", None)
    name = getattr(fn, "__name__", type(fn).__name__)
    if owner is not None:
        return f"{type(owner).__name__}.{name}"
    return getattr(fn, "__qualname__", name)


def _record(sim: Simulator) -> list:
    """Attach a trace to ``sim``; returns the growing (time, seq, kind) list."""
    trace = []
    sim.trace = lambda t, s, fn, args: trace.append((t, s, _kind(fn, args)))
    return trace


def _vod_scenario(engine: str) -> list:
    """One VoD stream with pause/resume — the bread-and-butter schedule."""
    sim, cluster, _ = build_cluster(n_msus=1, n_titles=1, length=20.0)
    assert sim.engine == engine
    trace = _record(sim)
    client = open_client(sim, cluster)
    marks = {}

    def scenario():
        yield from client.register_port("tv", "mpeg1")
        view = yield from client.play("title0", "tv")
        yield from client.wait_ready(view)
        yield sim.timeout(2.0)
        client.vcr(view.group_id, m.VCR_PAUSE)
        yield sim.timeout(1.0)
        client.vcr(view.group_id, m.VCR_PLAY)
        yield sim.timeout(2.0)
        client.quit(view.group_id)
        marks["done"] = sim.now

    sim.process(scenario())
    sim.run(until=12.0)
    assert "done" in marks
    return trace


def _multicast_scenario(engine: str) -> list:
    """Two viewers batch onto one channel inside the multicast window."""
    sim, cluster, _ = build_cluster(
        n_msus=1, n_titles=1, length=20.0, multicast=MCAST
    )
    assert sim.engine == engine
    trace = _record(sim)
    client = open_client(sim, cluster)

    def scenario():
        yield from client.register_port("tv0", "mpeg1")
        yield from client.register_port("tv1", "mpeg1")
        v0 = yield from client.play("title0", "tv0")
        v1 = yield from client.play("title0", "tv1")
        yield from client.wait_ready(v0)
        yield from client.wait_ready(v1)
        yield sim.timeout(3.0)
        client.quit(v0.group_id)
        yield sim.timeout(1.0)
        client.quit(v1.group_id)

    sim.process(scenario())
    sim.run(until=12.0)
    return trace


def _failover_scenario(engine: str) -> list:
    """A crash mid-stream: detection, teardown and cleanup traffic."""
    sim, cluster, _ = build_cluster(
        n_msus=2, n_titles=1, length=20.0, failover="fast"
    )
    assert sim.engine == engine
    trace = _record(sim)
    client = open_client(sim, cluster)

    def scenario():
        yield from client.register_port("tv", "mpeg1")
        view = yield from client.play("title0", "tv")
        yield from client.wait_ready(view)
        yield sim.timeout(1.0)
        cluster.fail_msu(0, crash=True)
        yield sim.timeout(3.0)

    sim.process(scenario())
    sim.run(until=10.0)
    return trace


def _live_scenario(engine: str) -> list:
    """A live channel on the air with one viewer tuning in and out."""
    spec = ChannelSpec(
        "news", "mpeg1", "feed0", start_at=0.5, duration_seconds=10.0
    )
    sim = Simulator()
    assert sim.engine == engine
    from repro.core import CalliopeCluster, ClusterConfig
    from tests.helpers import SMALL

    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=1, ibtree_config=SMALL,
            live=LiveConfig(lineup=(spec,), ring_seconds=4.0),
        ),
    )
    cluster.coordinator.db.add_customer("user")
    source = LiveSource(sim, cluster, "feed0")
    source.add_feed("news", make_packets(10.0))
    trace = _record(sim)
    client = open_client(sim, cluster)

    def scenario():
        yield from client.register_port("tv", "mpeg1")
        yield sim.timeout(2.0)  # the channel is on the air by now
        view = yield from client.play("news", "tv")
        yield from client.wait_ready(view)
        yield sim.timeout(3.0)
        client.quit(view.group_id)

    sim.process(scenario())
    sim.run(until=9.0)
    return trace


SCENARIOS = {
    "vod": _vod_scenario,
    "multicast": _multicast_scenario,
    "failover": _failover_scenario,
    "live": _live_scenario,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace_identical_across_engines(name, monkeypatch):
    scenario = SCENARIOS[name]
    traces = {}
    for engine in ("heap", "wheel"):
        monkeypatch.setenv("CALLIOPE_ENGINE", engine)
        traces[engine] = scenario(engine)
    heap, wheel = traces["heap"], traces["wheel"]
    assert len(heap) > 1000, f"{name}: trace suspiciously small ({len(heap)})"
    # Pinpoint the first divergence rather than diffing two huge lists.
    for i, (a, b) in enumerate(zip(heap, wheel)):
        assert a == b, f"{name}: schedules diverge at entry {i}: {a} != {b}"
    assert len(heap) == len(wheel)


# ---------------------------------------------------------------------------
# Hypothesis: wheel vs heap oracle on raw push/pop sequences
# ---------------------------------------------------------------------------

# Times spanning the wheel's interesting regimes: sub-granularity ties,
# the dense near band, the far heap beyond the 4096-slot window, and
# exact duplicates (ordering must fall back to seq alone).
_times = st.one_of(
    st.floats(0.0, 0.01, allow_nan=False),      # within one or two buckets
    st.floats(0.0, 5.0, allow_nan=False),       # across the near window
    st.floats(100.0, 10_000.0, allow_nan=False),  # far heap + refills
    st.sampled_from([0.0, 0.001, 0.5, 4.096, 4096.0]),
)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times),
        st.tuples(st.just("pop"), st.none()),
    ),
    min_size=1,
    max_size=400,
)


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_wheel_pops_in_heap_order(ops):
    wheel, heap = TimerWheel(), HeapScheduler()
    now = 0.0
    seq = 0
    for op, t in ops:
        if op == "push":
            seq += 1
            # Entries are never scheduled in the past (the kernel adds
            # delays >= 0 to the current time).
            at = now + t
            wheel.push(at, seq, _kind, ())
            heap.push(at, seq, _kind, ())
        else:
            assert bool(wheel) == bool(heap)
            assert wheel.next_time() == heap.next_time()
            if heap:
                got, want = wheel.pop(), heap.pop()
                assert got == want
                now = want[0]  # the clock follows executed entries
    # Drain both: the tails must agree entry for entry.
    while heap:
        assert wheel.pop() == heap.pop()
    assert not wheel
    assert wheel.next_time() == float("inf")


@given(
    base=st.floats(0.0, 1e6, allow_nan=False),
    offsets=st.lists(st.floats(0.0, 0.002, allow_nan=False), min_size=2, max_size=50),
)
@settings(max_examples=100, deadline=None)
def test_wheel_preserves_seq_order_for_equal_times(base, offsets):
    """Same-instant entries must pop in scheduling order, everywhere."""
    wheel, heap = TimerWheel(), HeapScheduler()
    for i, off in enumerate(offsets):
        t = base + (off if i % 2 else 0.0)  # mix exact ties with near-ties
        wheel.push(t, i, _kind, ())
        heap.push(t, i, _kind, ())
    order_w = [wheel.pop()[:2] for _ in range(len(offsets))]
    order_h = [heap.pop()[:2] for _ in range(len(offsets))]
    assert order_w == order_h


# ---------------------------------------------------------------------------
# Hypothesis: random process workloads trace identically on both engines
# ---------------------------------------------------------------------------

_actions = st.lists(
    st.one_of(
        st.tuples(st.just("sleep"), st.floats(0.0, 2.0, allow_nan=False)),
        st.tuples(st.just("timeout"), st.floats(0.0, 2.0, allow_nan=False)),
        st.tuples(st.just("spawn"), st.integers(0, 3)),
        st.tuples(st.just("schedule0"), st.none()),
        st.tuples(st.just("event"), st.none()),
        st.tuples(st.just("interrupt"), st.none()),
    ),
    min_size=1,
    max_size=25,
)


def _run_workload(engine: str, actions) -> list:
    sim = Simulator(engine=engine)
    trace = _record(sim)
    log = []
    spawned = []

    def leaf(n):
        for i in range(n):
            yield sim.sleep(0.05 * (i + 1))
            log.append(("leaf", n, i, sim.now))

    def driver():
        for i, (op, arg) in enumerate(actions):
            if op == "sleep":
                yield sim.sleep(arg)
            elif op == "timeout":
                yield sim.timeout(arg)
            elif op == "spawn":
                spawned.append(sim.process(leaf(arg + 1), name=f"leaf{i}"))
            elif op == "schedule0":
                sim.schedule(0.0, log.append, ("cb", i, sim.now))
            elif op == "event":
                ev = sim.event()
                sim.schedule(0.1, ev.succeed, i)
                value = yield ev
                log.append(("event", i, value, sim.now))
            elif op == "interrupt":
                for proc in spawned:
                    if proc.is_alive:
                        proc.interrupt("chaos")
                        break
            log.append(("step", i, sim.now))

    sim.process(driver(), name="driver")
    sim.run()
    return [trace, log]


@given(actions=_actions)
@settings(max_examples=75, deadline=None)
def test_random_workloads_trace_identically(actions):
    heap_trace, heap_log = _run_workload("heap", actions)
    wheel_trace, wheel_log = _run_workload("wheel", actions)
    assert heap_log == wheel_log
    assert heap_trace == wheel_trace
