"""Edge cases of AllOf/AnyOf and event failure propagation."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator
from tests.conftest import run_process


class TestAllOfFailures:
    def test_first_failure_fails_the_condition(self, sim):
        ok = sim.timeout(2.0, "fine")
        bad = sim.event()
        sim.schedule(1.0, bad.fail, RuntimeError("member died"))

        def proc():
            try:
                yield AllOf(sim, [ok, bad])
            except RuntimeError as err:
                return (sim.now, str(err))

        assert run_process(sim, proc()) == (1.0, "member died")

    def test_failure_after_success_ignored(self, sim):
        fast = sim.timeout(1.0, "a")
        slow = sim.timeout(2.0, "b")

        def proc():
            values = yield AllOf(sim, [fast, slow])
            return values

        assert run_process(sim, proc()) == ["a", "b"]

    def test_all_of_with_already_fired_events(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run()

        def proc():
            values = yield AllOf(sim, [done, sim.timeout(1.0, "late")])
            return values

        assert run_process(sim, proc()) == ["early", "late"]


class TestAnyOfFailures:
    def test_failure_wins_the_race(self, sim):
        slow = sim.timeout(5.0)
        bad = sim.event()
        sim.schedule(1.0, bad.fail, ValueError("lost it"))

        def proc():
            try:
                yield AnyOf(sim, [slow, bad])
            except ValueError:
                return sim.now

        assert run_process(sim, proc()) == 1.0

    def test_later_events_ignored_after_winner(self, sim):
        a = sim.timeout(1.0, "a")
        b = sim.timeout(2.0, "b")

        def proc():
            index, value = yield AnyOf(sim, [a, b])
            yield sim.timeout(5.0)  # b fires meanwhile; nothing breaks
            return (index, value)

        assert run_process(sim, proc()) == (0, "a")

    def test_any_of_with_already_fired_event(self, sim):
        done = sim.event()
        done.succeed(42)
        sim.run()

        def proc():
            index, value = yield AnyOf(sim, [sim.timeout(9.0), done])
            return (index, value, sim.now)

        assert run_process(sim, proc()) == (1, 42, 0.0)


class TestEventFailurePropagation:
    def test_process_sees_failed_event_as_exception(self, sim):
        bad = sim.event()
        sim.schedule(0.5, bad.fail, KeyError("nope"))

        def proc():
            try:
                yield bad
            except KeyError:
                return "caught"

        assert run_process(sim, proc()) == "caught"

    def test_uncaught_event_failure_fails_process(self, sim):
        bad = sim.event()
        bad.fail(RuntimeError("boom"))

        def proc():
            yield bad

        process = sim.process(proc())
        sim.run()
        assert process.triggered and not process.ok

    def test_ok_property(self, sim):
        good = sim.event()
        assert not good.ok  # pending
        good.succeed()
        assert good.ok
        bad = sim.event()
        bad.fail(ValueError())
        assert not bad.ok
