"""Failover subsystem: heartbeats, stream migration, degraded admission."""

from types import SimpleNamespace

from repro.core.admission import AdmissionControl
from repro.core.database import AdminDatabase, ContentEntry
from repro.core.replication import ReplicationManager
from repro.failover import (
    PRIORITY_NORMAL,
    PRIORITY_SINGLE_COPY,
    HeartbeatMonitor,
    play_priority,
)
from repro.multicast import MulticastConfig
from repro.net import messages as m
from repro.sim import Simulator
from repro.units import MPEG1_RATE

from tests.helpers import FAST, beat_until, build_cluster, open_client, start_stream


def build(n_msus=2, failover="fast", seed=3, length=30.0, multicast=None):
    return build_cluster(
        n_msus=n_msus, failover=failover, seed=seed, length=length,
        multicast=multicast,
    )


class TestHeartbeatMonitor:
    def test_silence_after_beats_declares_death(self):
        sim = Simulator()
        deaths = []
        monitor = HeartbeatMonitor(sim, FAST, on_dead=deaths.append)
        beat_until(sim, monitor, "msu0", stop=0.5)
        sim.run(until=0.55)
        assert monitor.state("msu0") == "alive"
        # Silence: suspect after 2 missed periods, dead one probe later.
        sim.run(until=0.5 + FAST.detection_latency + 0.05)
        assert monitor.state("msu0") == "dead"
        assert deaths == ["msu0"]
        assert monitor.suspects == 1 and monitor.deaths == 1

    def test_beat_during_backoff_revives(self):
        sim = Simulator()
        deaths = []
        monitor = HeartbeatMonitor(sim, FAST, on_dead=deaths.append)

        def sputter():
            monitor.beat(m.Heartbeat("msu0", 1))
            # Stay silent through the suspect threshold (0.2 s), then
            # beat again inside the backoff window.
            yield sim.timeout(0.25)
            assert monitor.state("msu0") == "suspect"
            monitor.beat(m.Heartbeat("msu0", 2))

        sim.process(sputter())
        sim.run(until=0.28)
        assert monitor.state("msu0") == "alive"
        assert not deaths
        # But the revival only buys time: more silence still kills it.
        sim.run(until=1.5)
        assert monitor.state("msu0") == "dead"

    def test_positions_replaced_wholesale_and_survive_forget(self):
        sim = Simulator()
        monitor = HeartbeatMonitor(sim, FAST)
        monitor.beat(m.Heartbeat("msu0", 1, ((1, 1, 5, 500), (1, 2, 7, 700))))
        monitor.beat(m.Heartbeat("msu0", 2, ((1, 1, 9, 900),)))
        assert monitor.position("msu0", 1, 1) == (9, 900)
        # The stream that stopped reporting aged out with the old beat.
        assert monitor.position("msu0", 1, 2) == (0, 0)
        monitor.forget_msu("msu0")
        # The migrator reads positions *after* death.
        assert monitor.position("msu0", 1, 1) == (9, 900)

    def test_rearms_after_forget(self):
        sim = Simulator()
        monitor = HeartbeatMonitor(sim, FAST)
        monitor.beat(m.Heartbeat("msu0", 1))
        monitor.forget_msu("msu0")
        monitor.beat(m.Heartbeat("msu0", 1))
        assert monitor.state("msu0") == "alive"
        sim.run(until=FAST.detection_latency + 0.1)
        assert monitor.state("msu0") == "dead"


class TestDegradedAdmission:
    def test_enqueue_orders_by_band_fifo_within(self):
        admission = AdmissionControl(AdminDatabase(), 4096)
        first = SimpleNamespace(priority=2, tag="n1")
        second = SimpleNamespace(priority=2, tag="n2")
        single = SimpleNamespace(priority=1, tag="s")
        resume = SimpleNamespace(priority=0, tag="r")
        for req in (first, second, single, resume):
            admission.enqueue(req)
        assert [req.tag for req in admission.queue] == ["r", "s", "n1", "n2"]
        assert admission.queued == 4

    def test_play_priority_tracks_live_copies(self):
        db = AdminDatabase()
        for name in ("msu0", "msu1", "msu2"):
            db.register_msu(name, [("d0", 1000)])
        solo = ContentEntry("solo", "mpeg1", "msu0", "d0")
        replicated = ContentEntry("pop", "mpeg1", "msu0", "d0")
        replicated.add_replica("msu1", "d0")
        db.add_content(solo)
        db.add_content(replicated)
        # Healthy cluster: everything is normal priority.
        assert play_priority(db, solo) == PRIORITY_NORMAL
        db.mark_msu_down("msu2")
        # Degraded: the single-copy title jumps a band, the title with
        # two live copies does not.
        assert play_priority(db, solo) == PRIORITY_SINGLE_COPY
        assert play_priority(db, replicated) == PRIORITY_NORMAL


class TestMigration:
    def test_hang_migrates_streams_to_replica(self):
        sim, cluster, packets = build(n_msus=2)
        coord = cluster.coordinator
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        sim.run(until=0.05)
        replica_disk = cluster.msus[1].disk_ids()[0]
        ReplicationManager(cluster).replicate("movie", "msu1", replica_disk)
        client = open_client(sim, cluster)
        view = start_stream(sim, client, "movie", "tv")
        sim.run(until=sim.now + 1.0)
        assert coord.groups[view.group_id].msu_name == "msu0"

        cluster.hang_msu(0)
        frozen = client.ports["tv"].stats.packets
        sim.run(until=sim.now + 2.0)

        group = coord.groups[view.group_id]
        assert group.msu_name == "msu1"
        assert view.migrations == 1
        assert not view.done_event.triggered
        assert client.ports["tv"].stats.packets > frozen
        session = coord.sessions.lookup(client.session_id)
        assert view.group_id in session.active_groups
        assert len(coord.migrator.records) == 1
        assert coord.migrator.records[0].to_msu == "msu1"
        # The resumed stream picked up near the heartbeat-reported page,
        # not at the top of the file.
        msu1 = cluster.msus[1]
        assert msu1.streams_resumed == 1
        assert all(s.next_page > 0 for s in msu1.iop.play_streams)

    def test_no_replica_queues_then_recovers(self):
        sim, cluster, packets = build(n_msus=2)
        coord = cluster.coordinator
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        client = open_client(sim, cluster)
        view = start_stream(sim, client, "movie", "tv")
        sim.run(until=sim.now + 1.0)

        cluster.hang_msu(0)
        sim.run(until=sim.now + FAST.detection_latency + 0.3)
        # Nothing to migrate to: the ticket parks at resume priority.
        assert view.group_id not in coord.groups
        assert coord.migrator.queued == 1
        queued = [req for req in coord.admission.queue if req.kind == "resume"]
        assert len(queued) == 1 and queued[0].priority == 0
        frozen = client.ports["tv"].stats.packets
        sim.run(until=sim.now + 1.0)
        assert client.ports["tv"].stats.packets == frozen

        cluster.recover(0)
        sim.run(until=sim.now + 2.0)
        assert coord.groups[view.group_id].msu_name == "msu0"
        assert not coord.admission.queue
        assert view.migrations == 1
        assert client.ports["tv"].stats.packets > frozen

    def test_queued_resume_granted_when_capacity_frees(self):
        sim, cluster, packets = build(n_msus=2)
        coord = cluster.coordinator
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        cluster.load_content("filler", "mpeg1", packets, msu_index=1)
        sim.run(until=0.05)
        replica_disk = cluster.msus[1].disk_ids()[0]
        ReplicationManager(cluster).replicate("movie", "msu1", replica_disk)
        client = open_client(sim, cluster)
        filler_view = start_stream(sim, client, "filler", "tv-filler")
        movie_view = start_stream(sim, client, "movie", "tv")
        sim.run(until=sim.now + 0.5)
        assert coord.groups[movie_view.group_id].msu_name == "msu0"
        # Shrink the survivor's disk so the resume cannot fit while the
        # filler stream holds its slot.
        disk = coord.db.disk("msu1", replica_disk)
        disk.bandwidth_capacity = disk.bandwidth_used + 0.5 * MPEG1_RATE

        cluster.hang_msu(0)
        sim.run(until=sim.now + FAST.detection_latency + 0.3)
        assert movie_view.group_id not in coord.groups
        assert coord.migrator.queued == 1

        client.quit(filler_view.group_id)
        sim.run(until=sim.now + 2.0)
        # The freed slot went to the parked resume ticket.
        assert coord.groups[movie_view.group_id].msu_name == "msu1"
        assert movie_view.migrations == 1
        assert not coord.admission.queue


class TestMulticastFailover:
    def test_channel_subscribers_resume_unicast_without_double_charge(self):
        """Channel viewers on a dead MSU migrate as plain unicast streams.

        The replica never re-creates the channel; each viewer costs the
        replica exactly one ``place_read`` charge, and the multicast
        ledger force-closes the dead channels so the books stay balanced.
        """
        sim, cluster, packets = build(
            n_msus=2, multicast=MulticastConfig(batch_window=0.2)
        )
        coord = cluster.coordinator
        manager = coord.channel_manager
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        sim.run(until=0.05)
        replica_disk = cluster.msus[1].disk_ids()[0]
        ReplicationManager(cluster).replicate("movie", "msu1", replica_disk)
        c0 = open_client(sim, cluster, "c0")
        c1 = open_client(sim, cluster, "c1")

        def viewer(client):
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_ready(view)
            return view

        p0 = sim.process(viewer(c0))
        p1 = sim.process(viewer(c1))
        v0 = sim.run_until_event(p0, limit=30.0)
        v1 = sim.run_until_event(p1, limit=30.0)
        assert manager.channels_created == 1
        assert manager.viewers_joined == 2
        sim.run(until=sim.now + 1.0)

        cluster.hang_msu(0)
        sim.run(until=sim.now + FAST.detection_latency + 1.0)

        # Both viewers migrated to the replica and keep receiving.
        assert v0.migrations == 1 and v1.migrations == 1
        assert coord.groups[v0.group_id].msu_name == "msu1"
        assert coord.groups[v1.group_id].msu_name == "msu1"
        frozen0 = c0.ports["tv"].stats.packets
        frozen1 = c1.ports["tv"].stats.packets
        sim.run(until=sim.now + 1.0)
        assert c0.ports["tv"].stats.packets > frozen0
        assert c1.ports["tv"].stats.packets > frozen1
        # The replica serves them as plain unicast: no channel state,
        # and exactly one disk slot charged per viewer — the dead
        # channel's charge was zeroed with its MSU, never re-billed.
        assert cluster.msus[1].channels == {}
        assert manager.channels == {}
        disk = coord.db.disk("msu1", replica_disk)
        assert disk.bandwidth_used == 2 * MPEG1_RATE
        assert coord.db.msus["msu1"].delivery_used == 2 * MPEG1_RATE
        assert manager.ledger.balanced()
        assert manager.ledger.channels[1].forced

        c0.quit(v0.group_id)
        c1.quit(v1.group_id)
        sim.run(until=sim.now + 1.0)
        assert disk.bandwidth_used == 0.0

    def test_patching_viewer_migrates_once(self):
        """A viewer still draining its patch when the MSU dies must not
        be double-charged on the replica: the patch charge died with the
        MSU's books, and migration re-places the viewer exactly once."""
        sim, cluster, packets = build(
            n_msus=2, multicast=MulticastConfig(batch_window=0.2)
        )
        coord = cluster.coordinator
        manager = coord.channel_manager
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        sim.run(until=0.05)
        replica_disk = cluster.msus[1].disk_ids()[0]
        ReplicationManager(cluster).replicate("movie", "msu1", replica_disk)
        c0 = open_client(sim, cluster, "c0")
        v0 = start_stream(sim, c0, "movie", "tv")
        sim.run(until=sim.now + 3.0)
        c1 = open_client(sim, cluster, "c1")
        v1 = start_stream(sim, c1, "movie", "tv")
        assert manager.patched_joins == 1

        cluster.hang_msu(0)
        sim.run(until=sim.now + FAST.detection_latency + 1.0)
        assert v1.migrations == 1
        assert coord.groups[v1.group_id].msu_name == "msu1"
        # One unicast slot per migrated viewer; the in-flight patch's
        # charge was zeroed with the dead MSU, not re-billed here.
        disk = coord.db.disk("msu1", replica_disk)
        assert disk.bandwidth_used == 2 * MPEG1_RATE
        assert manager.ledger.balanced()
        # The late joiner resumes from the channel front it had reached,
        # not from the top of the file.
        msu1 = cluster.msus[1]
        assert msu1.streams_resumed == 2
        resumed = {s.stream_id: s for s in msu1.iop.play_streams}
        assert all(s.next_page > 0 for s in resumed.values())


class TestFailureCleanup:
    def test_crash_without_failover_releases_everything(self):
        sim, cluster, packets = build(n_msus=1, failover=None)
        coord = cluster.coordinator
        cluster.load_content("movie", "mpeg1", packets)
        client = open_client(sim, cluster)
        view = start_stream(sim, client, "movie", "tv")
        sim.run(until=sim.now + 1.0)
        session = coord.sessions.lookup(client.session_id)
        assert view.group_id in session.active_groups

        cluster.fail_msu(0, crash=True)
        sim.run(until=sim.now + 0.5)
        # No stale group ids or allocations linger after the failure.
        assert session.active_groups == []
        assert coord.groups == {}
        state = coord.db.msus["msu0"]
        assert not state.available
        assert state.delivery_used == 0.0
        assert all(d.bandwidth_used == 0.0 for d in state.disks.values())


class TestReplicaRestoration:
    def test_dead_copies_do_not_count_and_are_restored(self):
        sim, cluster, packets = build(n_msus=3)
        coord = cluster.coordinator
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        sim.run(until=0.05)
        manager = ReplicationManager(cluster, max_replicas=1)
        manager.replicate("movie", "msu1", cluster.msus[1].disk_ids()[0])
        entry = coord.db.content("movie")
        entry.request_count = 10
        # Both copies live: at max_replicas, not hot-listed.
        assert len(manager._live_locations(entry)) == 2
        assert entry not in manager._hot_entries()

        cluster.fail_msu(0)
        sim.run(until=sim.now + 0.1)
        # The dead copy stops counting; the title is eligible again.
        assert manager._live_locations(entry) == [
            ("msu1", cluster.msus[1].disk_ids()[0])
        ]
        assert entry in manager._hot_entries()

        made = manager.restore_replicas(["movie"])
        assert len(made) == 1
        assert made[0].source[0] == "msu1"  # copied from the live replica
        assert made[0].target[0] == "msu2"
        assert len(manager._live_locations(entry)) == 2

    def test_watch_restores_replicas_on_failure(self):
        sim, cluster, packets = build(n_msus=3)
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        sim.run(until=0.05)
        manager = ReplicationManager(cluster)
        manager.replicate("movie", "msu1", cluster.msus[1].disk_ids()[0])
        manager.watch()
        cluster.hang_msu(0)
        sim.run(until=sim.now + FAST.detection_latency + 0.3)
        entry = cluster.coordinator.db.content("movie")
        assert len(manager._live_locations(entry)) == 2
        assert any(d.target[0] == "msu2" for d in manager.decisions)


class TestClientReconnect:
    def test_reconnect_gives_up_after_retries(self):
        sim, cluster, packets = build(n_msus=1, failover=None)
        cluster.load_content("movie", "mpeg1", packets)
        client = open_client(
            sim, cluster, reconnect_retries=2, reconnect_backoff=0.1
        )
        view = start_stream(sim, client, "movie", "tv")
        sim.run(until=sim.now + 1.0)
        cluster.fail_msu(0, crash=True)
        sim.run(until=sim.now + 0.1)
        # Still waiting out the retry window...
        assert not view.done_event.triggered
        sim.run(until=sim.now + 2.0)
        # ...but nothing came back: the group ends.
        assert view.closed
        assert view.done_event.triggered

    def test_quit_does_not_wait_out_retries(self):
        sim, cluster, packets = build(n_msus=1, failover=None)
        cluster.load_content("movie", "mpeg1", packets)
        client = open_client(
            sim, cluster, reconnect_retries=8, reconnect_backoff=5.0
        )
        view = start_stream(sim, client, "movie", "tv")
        sim.run(until=sim.now + 1.0)
        client.quit(view.group_id)
        sim.run(until=sim.now + 1.0)
        # A deliberate quit closes immediately; no reconnect attempts.
        assert view.quit_requested
        assert view.done_event.triggered
        assert view.migrations == 0
