"""Unit and property tests for Resource, PriorityResource and Store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PriorityResource, Resource, Simulator, Store
from tests.conftest import run_process


class TestResource:
    def test_grants_up_to_capacity_immediately(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        r3 = res.request()
        assert not r3.triggered
        assert res.in_use == 2
        assert res.queue_length == 1

    def test_release_wakes_fifo(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        third = res.request()
        res.release(first)
        sim.run()
        assert second.triggered and not third.triggered

    def test_release_unknown_request_rejected(self, sim):
        res = Resource(sim, capacity=1)
        other = Resource(sim, capacity=1)
        req = other.request()
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_release_waiting_request_cancels_it(self, sim):
        res = Resource(sim, capacity=1)
        holder = res.request()
        waiter = res.request()
        res.release(waiter)  # cancel the queued claim
        res.release(holder)
        sim.run()
        assert res.in_use == 0 and res.queue_length == 0

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_mutual_exclusion_in_processes(self, sim):
        res = Resource(sim, capacity=1)
        active = [0]
        peak = [0]

        def worker():
            req = res.request()
            yield req
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield sim.timeout(1.0)
            active[0] -= 1
            res.release(req)

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert peak[0] == 1
        assert sim.now == 5.0


class TestPriorityResource:
    def test_lowest_priority_first(self, sim):
        res = PriorityResource(sim, capacity=1)
        holder = res.request()
        order = []
        reqs = []
        for prio in [5.0, 1.0, 3.0]:
            req = res.request(priority=prio)
            req.add_callback(lambda e, p=prio: order.append(p))
            reqs.append(req)
        res.release(holder)
        sim.run()
        for _ in range(3):
            granted = next(r for r in reqs if r.triggered and r in res._holders)
            res.release(granted)
            sim.run()
        assert order == [1.0, 3.0, 5.0]

    def test_tie_breaks_fifo(self, sim):
        res = PriorityResource(sim, capacity=1)
        holder = res.request()
        order = []
        a = res.request(priority=1.0)
        b = res.request(priority=1.0)
        a.add_callback(lambda e: order.append("a"))
        b.add_callback(lambda e: order.append("b"))
        res.release(holder)
        sim.run()
        res.release(a)
        sim.run()
        assert order == ["a", "b"]

    def test_cancel_waiting(self, sim):
        res = PriorityResource(sim, capacity=1)
        holder = res.request()
        waiter = res.request(priority=2.0)
        res.release(waiter)
        assert res.queue_length == 0
        res.release(holder)


class TestStore:
    def test_fifo_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.get().value == 1
        assert store.get().value == 2

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer():
            item = yield store.get()
            return (sim.now, item)

        def producer():
            yield sim.timeout(3.0)
            store.put("x")

        sim.process(producer())
        assert run_process(sim, consumer()) == (3.0, "x")

    def test_getters_fifo(self, sim):
        store = Store(sim)
        g1, g2 = store.get(), store.get()
        store.put("a")
        store.put("b")
        assert g1.value == "a" and g2.value == "b"

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(5)
        assert store.try_get() == 5

    def test_cancel_pending_get(self, sim):
        store = Store(sim)
        getter = store.get()
        store.cancel(getter)
        store.put("x")
        # the cancelled getter must not swallow the item
        assert store.try_get() == "x"

    def test_len_counts_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestResourceProperties:
    @given(
        holds=st.lists(
            st.tuples(st.floats(0.01, 2.0), st.integers(0, 3)), min_size=1, max_size=20
        ),
        capacity=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_capacity(self, holds, capacity):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        active = [0]
        peak = [0]

        def worker(duration, start_slot):
            yield sim.timeout(start_slot * 0.1)
            req = res.request()
            yield req
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield sim.timeout(duration)
            active[0] -= 1
            res.release(req)

        for duration, slot in holds:
            sim.process(worker(duration, slot))
        sim.run()
        assert peak[0] <= capacity
        assert res.in_use == 0 and res.queue_length == 0
