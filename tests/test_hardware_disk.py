"""Disk mechanics: seek curve, geometry, transfers, queue disciplines."""

import pytest

from repro.hardware import DiskDrive, HostBusAdapter, Machine, MachineParams, SeekPolicy
from repro.hardware.params import DiskParams
from repro.sim import Simulator
from repro.units import BLOCK_SIZE, to_mbyte_per_s
from tests.conftest import run_process


def make_disk(sim, policy=SeekPolicy.FCFS, params=DiskParams()):
    machine = Machine(sim, MachineParams(disks_per_hba=(1,), disk=params),
                      disk_policy=policy)
    return machine.disks[0], machine


class TestGeometry:
    def test_cylinder_mapping_bounds(self, sim):
        disk, _ = make_disk(sim)
        assert disk.cylinder_of(0) == 0
        last = disk.cylinder_of(disk.params.capacity_bytes - 1)
        assert last == disk.params.cylinders - 1

    def test_offset_out_of_range(self, sim):
        disk, _ = make_disk(sim)
        with pytest.raises(ValueError):
            disk.cylinder_of(disk.params.capacity_bytes)
        with pytest.raises(ValueError):
            disk.cylinder_of(-1)

    def test_seek_time_monotone_in_distance(self, sim):
        disk, _ = make_disk(sim)
        times = [disk.seek_time(d) for d in (0, 1, 10, 100, 1000, 2699)]
        assert times[0] == 0.0
        assert all(a <= b for a, b in zip(times[1:], times[2:]))

    def test_full_stroke_seek_is_min_plus_max(self, sim):
        disk, _ = make_disk(sim)
        p = disk.params
        assert disk.seek_time(p.cylinders) == pytest.approx(p.seek_min + p.seek_max_extra)


class TestTransfer:
    def test_transfer_takes_mechanical_time(self, sim):
        disk, _ = make_disk(sim)
        run_process(sim, disk.transfer(0, BLOCK_SIZE))
        # At least the media time, at most media + worst seek + rotation + fudge.
        media = BLOCK_SIZE / disk.params.media_rate
        assert sim.now >= media
        assert sim.now <= media + 0.05

    def test_transfer_updates_stats(self, sim):
        disk, _ = make_disk(sim)
        run_process(sim, disk.transfer(0, BLOCK_SIZE))
        assert disk.bytes_transferred == BLOCK_SIZE
        assert disk.requests_served == 1
        assert disk.busy_time > 0

    def test_bad_sizes_rejected(self, sim):
        disk, _ = make_disk(sim)
        with pytest.raises(ValueError):
            list(disk.transfer(0, 0))

    def test_requests_serialize_on_one_arm(self, sim):
        disk, _ = make_disk(sim)

        def reader(offset):
            yield from disk.transfer(offset, BLOCK_SIZE)
            return sim.now

        p1 = sim.process(reader(0))
        p2 = sim.process(reader(BLOCK_SIZE * 100))
        sim.run()
        assert p2.value > p1.value  # strictly after: the arm is exclusive

    def test_throughput_single_disk_matches_table1(self, sim):
        """A lone disk reads random 256 KiB blocks at ~3.6 MB/s (Table 1)."""
        import numpy as np

        disk, _ = make_disk(sim)
        rng = np.random.default_rng(0)
        nblocks = disk.params.capacity_bytes // BLOCK_SIZE

        def reader():
            while True:
                offset = int(rng.integers(0, nblocks)) * BLOCK_SIZE
                yield from disk.transfer(offset, BLOCK_SIZE)

        sim.process(reader())
        sim.run(until=15.0)
        rate = to_mbyte_per_s(disk.throughput(15.0))
        assert 3.3 <= rate <= 3.9


class TestPolicies:
    def _run_many(self, policy, seed=7):
        import numpy as np

        sim = Simulator()
        disk, _ = make_disk(sim, policy=policy)
        rng = np.random.default_rng(seed)
        nblocks = disk.params.capacity_bytes // BLOCK_SIZE

        def reader():
            while True:
                offset = int(rng.integers(0, nblocks)) * BLOCK_SIZE
                yield from disk.transfer(offset, BLOCK_SIZE)

        for _ in range(16):
            sim.process(reader())
        sim.run(until=20.0)
        return disk

    def test_elevator_reduces_seek_distance(self):
        fcfs = self._run_many(SeekPolicy.FCFS)
        elevator = self._run_many(SeekPolicy.ELEVATOR)
        per_req_fcfs = fcfs.total_seek_distance / fcfs.requests_served
        per_req_elev = elevator.total_seek_distance / elevator.requests_served
        assert per_req_elev < per_req_fcfs

    def test_sstf_at_least_as_good_as_fcfs(self):
        fcfs = self._run_many(SeekPolicy.FCFS)
        sstf = self._run_many(SeekPolicy.SSTF)
        assert sstf.bytes_transferred >= fcfs.bytes_transferred


class TestChainSharing:
    def test_two_disks_one_chain_slower_each(self):
        """Chain + driver contention: each of two disks is slower than a
        lone disk (Table 1's 3.6 -> 2.8)."""
        import numpy as np

        def measure(topology):
            sim = Simulator()
            machine = Machine(sim, MachineParams(disks_per_hba=topology), seed=1)
            rng = np.random.default_rng(1)

            def reader(disk):
                nblocks = disk.params.capacity_bytes // BLOCK_SIZE
                child = np.random.default_rng(rng.integers(0, 2**63))
                while True:
                    offset = int(child.integers(0, nblocks)) * BLOCK_SIZE
                    yield from disk.transfer(offset, BLOCK_SIZE)

            for disk in machine.disks:
                sim.process(reader(disk))
            sim.run(until=15.0)
            return [to_mbyte_per_s(d.throughput(15.0)) for d in machine.disks]

        single = measure((1,))[0]
        pair = measure((2,))
        assert all(rate < single for rate in pair)
        assert all(2.4 <= rate <= 3.2 for rate in pair)
