"""Coordinator crash recovery: journal, snapshots, replay, reconciliation.

The unit half exercises the durable pieces in isolation — the
:class:`JournalStore` WAL/snapshot mechanics and the snapshot round trip.
The integration half kills the live Coordinator mid-playback
(``cluster.crash_coordinator``), cold-starts a replacement from the
journal, and checks the paper-level promises: already-admitted streams
keep playing through the outage, queued requests survive as durable
tickets, terminations the dead Coordinator never heard about are
resolved MSU-wins, and the rebuilt books are byte-identical to a
from-scratch reconciliation.
"""

import json

import pytest

from repro.core.coordinator import Coordinator
from repro.errors import CalliopeError, ContentInUseError
from repro.recovery import (
    JournalStore,
    books_state,
    expected_books,
    recover,
    restore_state,
    snapshot_state,
)
from repro.sim import Simulator
from repro.units import MPEG1_RATE

from tests.helpers import build_cluster, open_client, start_viewer


class TestJournalStore:
    def test_append_assigns_monotone_seqs(self):
        store = JournalStore(snapshot_every=4)
        first = store.append("customer-add", {"name": "a", "admin": False})
        second = store.append("note-request", {"name": "m"})
        assert (first.seq, second.seq) == (1, 2)
        assert store.wal_length() == 2
        assert store.appends == 2
        assert store.counts_by_kind() == {"customer-add": 1, "note-request": 1}

    def test_snapshot_due_and_truncation(self):
        store = JournalStore(snapshot_every=3)
        for i in range(3):
            assert not store.snapshot_due() or i == 3
            store.append("note-request", {"name": f"m{i}"})
        assert store.snapshot_due()
        store.install_snapshot({"fake": "state"})
        assert store.snapshot == {"fake": "state"}
        assert store.snapshot_seq == 3
        assert store.wal_length() == 0
        assert store.truncated_records == 3
        # Sequence numbers keep climbing across the truncation.
        assert store.append("note-request", {"name": "m"}).seq == 4

    def test_zero_snapshot_every_disables_auto_snapshots(self):
        store = JournalStore(snapshot_every=0)
        for i in range(10):
            store.append("note-request", {"name": "m"})
        assert not store.snapshot_due()

    def test_json_round_trip(self):
        store = JournalStore(snapshot_every=5)
        store.install_snapshot({"v": 1})
        store.append("customer-add", {"name": "a", "admin": True})
        clone = JournalStore.from_json(store.to_json())
        assert clone.snapshot == store.snapshot
        assert clone.snapshot_seq == store.snapshot_seq
        assert clone.next_seq == store.next_seq
        assert clone.records == store.records

    def test_from_json_rejects_foreign_files(self):
        with pytest.raises(ValueError, match="not a Calliope journal"):
            JournalStore.from_json(json.dumps({"format": "something-else"}))


def _fresh_coordinator():
    return Coordinator(Simulator())


def _comparable(state: dict) -> str:
    """Snapshot image minus the lifetime metric counters.

    Replaying "charge"/"release" records rebuilds the books but not the
    admitted/queued/rejected tallies — a documented accepted loss
    (DESIGN.md §10); everything else must round-trip byte-identical.
    """
    state = json.loads(json.dumps(state))  # deep copy
    for key in ("admitted", "queued", "rejected", "cache_admitted"):
        state["counters"].pop(key, None)
    return json.dumps(state, sort_keys=True)


class TestSnapshotRestore:
    def test_round_trip_is_byte_identical(self):
        coord = _fresh_coordinator()
        coord.db.add_customer("user")
        coord.admin_add_content("m", "mpeg1", "msu0", "msu0.sd0", blocks=4)
        coord.db.register_msu("msu0", [("msu0.sd0", 1000)], cache_bps=1e6)
        coord.db.note_request("m")
        ctype = coord.types.get("mpeg1")
        alloc = coord.admission.place_read(coord.db.content("m"), ctype)
        assert alloc is not None
        state = snapshot_state(coord)
        clone = _fresh_coordinator()
        restore_state(clone, state)
        assert (
            json.dumps(snapshot_state(clone), sort_keys=True)
            == json.dumps(state, sort_keys=True)
        )

    def test_replay_reproduces_mutations(self):
        store = JournalStore(snapshot_every=256)
        coord = _fresh_coordinator()
        coord.attach_journal(store)
        coord.db.add_customer("user")
        coord.db.register_msu("msu0", [("msu0.sd0", 1000)])
        coord.admin_add_content("m", "mpeg1", "msu0", "msu0.sd0", blocks=4)
        ctype = coord.types.get("mpeg1")
        held = coord.admission.place_read(coord.db.content("m"), ctype)
        released = coord.admission.place_read(coord.db.content("m"), ctype)
        coord.admission.release(released)
        clone = _fresh_coordinator()
        assert recover(clone, store) == store.wal_length()
        assert _comparable(snapshot_state(clone)) == _comparable(
            snapshot_state(coord)
        )
        assert clone.db.msus["msu0"].active_streams == 1

    def test_replay_starts_from_snapshot_plus_tail(self):
        store = JournalStore(snapshot_every=2)  # snapshot after 2 records
        coord = _fresh_coordinator()
        coord.attach_journal(store)
        coord.db.add_customer("user")
        coord.db.register_msu("msu0", [("msu0.sd0", 1000)])
        assert store.snapshots_taken >= 2  # the attach seed + one auto
        coord.db.add_customer("late")
        assert store.wal_length() == 1  # only the tail past the snapshot
        clone = _fresh_coordinator()
        recover(clone, store)
        assert set(clone.db.customers) == {"user", "late"}


@pytest.mark.integration
class TestCoordinatorRestart:
    def test_admitted_streams_survive_the_outage(self):
        sim, cluster, _ = build_cluster(n_msus=2, n_titles=2, run_to=0.3)
        client = open_client(sim, cluster)
        views = [
            start_viewer(sim, client, f"title{t}", f"v{t}") for t in range(2)
        ]
        cluster.crash_coordinator()
        crash_at = sim.now
        sim.run(until=crash_at + 1.5)
        # MSUs kept serving unsupervised: every group still has streams.
        for msu in cluster.msus:
            assert msu.up
        cluster.restart_coordinator()
        sim.run(until=sim.now + 1.0)
        coord = cluster.coordinator
        outcome = coord.last_recovery
        assert outcome is not None
        assert outcome.msus_missing == 0
        assert outcome.streams_kept == 2
        assert outcome.streams_dropped == 0
        assert outcome.streams_adopted == 0
        for view in views:
            assert view.group_id in coord.groups
        assert (
            json.dumps(books_state(coord), sort_keys=True)
            == json.dumps(expected_books(coord), sort_keys=True)
        )

    def test_crash_requires_a_journal(self):
        sim, cluster, _ = build_cluster(n_msus=1, run_to=0.2)
        cluster.journal = None
        with pytest.raises(CalliopeError, match="journal"):
            cluster.crash_coordinator()

    def test_client_rpcs_fail_fast_while_down(self):
        sim, cluster, _ = build_cluster(n_msus=1, n_titles=1, run_to=0.3)
        client = open_client(sim, cluster)
        cluster.crash_coordinator()
        with pytest.raises(CalliopeError):
            open_client(sim, cluster, name="c1")

        def late_play():
            yield from client.register_port("tv", "mpeg1")

        proc = sim.process(late_play())
        with pytest.raises(CalliopeError, match="closed"):
            sim.run_until_event(proc, limit=5.0)

    def test_termination_during_outage_resolved_msu_wins(self):
        sim, cluster, _ = build_cluster(n_msus=2, n_titles=2, run_to=0.3)
        client = open_client(sim, cluster)
        kept = start_viewer(sim, client, "title0", "v0")
        quitter = start_viewer(sim, client, "title1", "v1")
        cluster.crash_coordinator()
        # The quit travels client -> MSU over the VCR channel, which is
        # alive; the StreamTerminated toward the dead Coordinator is lost.
        client.quit(quitter.group_id)
        sim.run(until=sim.now + 1.0)
        cluster.restart_coordinator()
        sim.run(until=sim.now + 1.0)
        coord = cluster.coordinator
        outcome = coord.last_recovery
        assert outcome.streams_kept == 1
        assert outcome.streams_dropped == 1
        assert quitter.group_id not in coord.groups
        assert kept.group_id in coord.groups
        assert (
            json.dumps(books_state(coord), sort_keys=True)
            == json.dumps(expected_books(coord), sort_keys=True)
        )

    def test_msu_dead_during_outage_declared_failed(self):
        sim, cluster, _ = build_cluster(
            n_msus=2, n_titles=1, failover="fast", run_to=0.3
        )
        client = open_client(sim, cluster)
        start_viewer(sim, client, "title0", "v0")
        cluster.crash_coordinator()
        cluster.fail_msu(1, crash=True)  # no StateReport will ever come
        sim.run(until=sim.now + 0.5)
        cluster.restart_coordinator()
        sim.run(until=sim.now + 2.0)
        coord = cluster.coordinator
        outcome = coord.last_recovery
        assert outcome.msus_missing == 1
        assert not coord.db.msus["msu1"].available

    def test_queued_ticket_survives_the_crash(self):
        sim, cluster, _ = build_cluster(n_msus=1, n_titles=1, run_to=0.3)
        coord = cluster.coordinator
        # Pinch delivery so a third stream cannot fit and must queue.
        coord.db.msus["msu0"].delivery_capacity = 2.2 * MPEG1_RATE
        client = open_client(sim, cluster)
        start_viewer(sim, client, "title0", "v0")
        start_viewer(sim, client, "title0", "v1")

        def third():
            yield from client.register_port("v2", "mpeg1")
            yield from client.play("title0", "v2")

        sim.process(third())
        sim.run(until=sim.now + 0.5)
        assert len(coord.admission.queue) == 1
        ticket_id = coord.admission.queue[0].ticket_id
        assert ticket_id > 0
        cluster.crash_coordinator()
        sim.run(until=sim.now + 1.0)
        cluster.restart_coordinator()
        coord = cluster.coordinator
        sim.run(until=sim.now + 1.0)
        assert coord.last_recovery.tickets_recovered == 1
        # The replayed MSU registration restored full default capacity,
        # so the post-recovery retry places the parked request.
        assert len(coord.admission.queue) == 0
        assert len(coord.groups) == 3

    def test_restart_without_msus_reconciles_empty(self):
        sim, cluster, _ = build_cluster(n_msus=1, run_to=0.2)
        cluster.fail_msu(0, crash=True)
        sim.run(until=sim.now + 0.2)
        cluster.crash_coordinator()
        cluster.restart_coordinator()
        sim.run(until=sim.now + 2.0)
        coord = cluster.coordinator
        assert coord.last_recovery is not None
        assert coord.last_recovery.msus_reported == 0


class TestRemoveContentGuard:
    def test_active_readers_block_removal(self):
        sim, cluster, _ = build_cluster(n_msus=1, n_titles=1, run_to=0.3)
        coord = cluster.coordinator
        client = open_client(sim, cluster)
        view = start_viewer(sim, client, "title0", "v0")
        with pytest.raises(ContentInUseError, match="active reader"):
            coord.db.remove_content("title0")
        client.quit(view.group_id)
        sim.run(until=sim.now + 1.0)
        assert coord.db.content("title0").active_total() == 0
        entry = coord.db.remove_content("title0")
        assert entry.name == "title0"
        assert "title0" not in coord.db.contents


class TestReplayIdempotence:
    """Replaying the same durable state twice must change nothing.

    The warm standby re-runs exactly this machinery continuously — a
    snapshot re-restore after a truncation, then whatever WAL suffix it
    has not seen — so restore+replay has to be a pure function of the
    journal: byte-identical however many times, and from whatever
    starting state, it is applied.
    """

    def _journaled_cluster(self):
        sim, cluster, _ = build_cluster(n_msus=2, n_titles=2, run_to=0.3)
        client = open_client(sim, cluster)
        for t in range(2):
            start_viewer(sim, client, f"title{t}", f"v{t}")
        sim.run(until=2.0)
        return sim, cluster

    def test_recover_is_deterministic_across_fresh_coordinators(self):
        _, cluster = self._journaled_cluster()
        store = cluster.journal
        first, second = _fresh_coordinator(), _fresh_coordinator()
        recover(first, store)
        recover(second, store)
        assert (
            json.dumps(snapshot_state(first), sort_keys=True)
            == json.dumps(snapshot_state(second), sort_keys=True)
        )

    def test_recover_twice_into_one_coordinator_is_idempotent(self):
        _, cluster = self._journaled_cluster()
        store = cluster.journal
        coord = _fresh_coordinator()
        recover(coord, store)
        once = json.dumps(snapshot_state(coord), sort_keys=True)
        books_once = json.dumps(books_state(coord), sort_keys=True)
        # The restore resets the state wholesale, so replaying the very
        # same snapshot + WAL again lands on the very same bytes — no
        # charge applies twice, no grant accumulates.
        recover(coord, store)
        assert json.dumps(snapshot_state(coord), sort_keys=True) == once
        assert json.dumps(books_state(coord), sort_keys=True) == books_once

    def test_compaction_is_invisible_to_replay(self):
        _, cluster = self._journaled_cluster()
        store = cluster.journal
        replayed = _fresh_coordinator()
        recover(replayed, store)
        compacted = JournalStore.from_json(store.to_json())
        compacted.install_snapshot(snapshot_state(replayed))
        assert compacted.wal_length() == 0
        fresh = _fresh_coordinator()
        recover(fresh, compacted)
        assert (
            json.dumps(snapshot_state(fresh), sort_keys=True)
            == json.dumps(snapshot_state(replayed), sort_keys=True)
        )

    def test_standby_tail_skips_already_applied_records(self):
        sim, cluster, _ = build_cluster(
            n_msus=2, n_titles=1, standby=True, run_to=0.3
        )
        client = open_client(sim, cluster)
        start_viewer(sim, client, "title0", "v0")
        sim.run(until=1.0)
        standby = cluster.standbys[0]
        standby.sync()
        before = json.dumps(books_state(standby.shadow), sort_keys=True)
        # An overlapping suffix (same snapshot, same records) applies
        # nothing: the seq cursor already covers every record.
        assert standby.sync() == 0
        after = json.dumps(books_state(standby.shadow), sort_keys=True)
        assert after == before
