"""The offline fast-scan filter (§2.3.1)."""

import pytest

from repro.errors import ProtocolError
from repro.media import MpegEncoder, make_fast_backward, make_fast_forward, parse_frames


@pytest.fixture(scope="module")
def bitstream():
    return MpegEncoder(seed=11).bitstream(20.0)  # 600 frames, 40 GOPs


class TestFastForward:
    def test_selects_every_nth_frame(self, bitstream):
        filtered, numbers = make_fast_forward(bitstream, step=15)
        assert numbers == list(range(0, 600, 15))

    def test_selected_frames_are_intra_coded(self, bitstream):
        filtered, _ = make_fast_forward(bitstream, step=15)
        assert all(f.ftype == "I" for f in parse_frames(filtered))

    def test_payloads_preserved(self, bitstream):
        original = parse_frames(bitstream)
        filtered, numbers = make_fast_forward(bitstream, step=15)
        for frame, number in zip(parse_frames(filtered), numbers):
            assert frame.payload == original[number].payload

    def test_step_selecting_inter_frames_rejected(self, bitstream):
        """Inter-coded frames cannot be decoded standalone (§2.3.1)."""
        with pytest.raises(ProtocolError):
            make_fast_forward(bitstream, step=7)

    def test_step_multiple_of_gop_allowed(self, bitstream):
        filtered, numbers = make_fast_forward(bitstream, step=30)
        assert numbers == list(range(0, 600, 30))

    def test_bad_step(self, bitstream):
        with pytest.raises(ValueError):
            make_fast_forward(bitstream, step=0)


class TestFastBackward:
    def test_frames_reversed(self, bitstream):
        _, forward = make_fast_forward(bitstream, step=15)
        _, backward = make_fast_backward(bitstream, step=15)
        assert backward == list(reversed(forward))

    def test_stream_parses(self, bitstream):
        filtered, _ = make_fast_backward(bitstream, step=15)
        frames = parse_frames(filtered)
        assert frames[0].number == 585
        assert frames[-1].number == 0

    def test_rate_comparable_to_normal(self, bitstream):
        """Filtered streams occupy a normal stream's resources: roughly
        1/step the bytes covering the same content span."""
        filtered, _ = make_fast_forward(bitstream, step=15)
        ratio = len(filtered) / len(bitstream)
        # I frames are ~3x average, so 1/15th of frames ~ 3/15 of bytes.
        assert 0.1 < ratio < 0.35
