"""End-to-end integration: the full Figure 1 system in motion."""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import MpegEncoder, NvEncoder, VatEncoder, packetize_cbr
from repro.net import messages as m
from repro.net.rtp import RtpHeader
from repro.net.vat import VatHeader
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE

#: Small pages keep integration tests fast while using the whole stack.
SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)
PACKET = 1024


def build(n_msus=1):
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=n_msus, ibtree_config=SMALL))
    cluster.coordinator.db.add_customer("user")
    return sim, cluster


def mpeg_packets(seconds, seed=1):
    stream = MpegEncoder(seed=seed).bitstream(seconds)
    return packetize_cbr(stream, MPEG1_RATE, PACKET), stream


def drive(sim, gen, until=300.0):
    proc = sim.process(gen)
    sim.run(until=until)
    assert proc.triggered, "scenario did not finish"
    return proc.value


class TestPlayback:
    def test_full_playback_delivers_every_packet(self):
        sim, cluster = build()
        packets, _ = mpeg_packets(5.0)
        cluster.load_content("movie", "mpeg1", packets)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_done(view)
            return client.ports["tv"].stats

        stats = drive(sim, scenario())
        assert stats.packets == len(packets)
        assert stats.bytes == sum(len(p.payload) for p in packets)

    def test_payload_bytes_survive_the_whole_path(self):
        sim, cluster = build()
        packets, stream = mpeg_packets(2.0)
        cluster.load_content("movie", "mpeg1", packets)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1", capture_payloads=True)
            view = yield from client.play("movie", "tv")
            yield from client.wait_done(view)

        drive(sim, scenario())
        assert b"".join(client.ports["tv"].stats.payloads) == stream

    def test_two_clients_two_msus(self):
        sim, cluster = build(n_msus=2)
        packets, _ = mpeg_packets(3.0)
        cluster.load_content("a", "mpeg1", packets, msu_index=0)
        cluster.load_content("b", "mpeg1", packets, msu_index=1)
        c0 = Client(sim, cluster, "c0")
        c1 = Client(sim, cluster, "c1")

        def scenario(client, content):
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play(content, "tv")
            yield from client.wait_done(view)
            return view.msu_name

        p0 = sim.process(scenario(c0, "a"))
        p1 = sim.process(scenario(c1, "b"))
        sim.run(until=120)
        assert p0.value == "msu0" and p1.value == "msu1"

    def test_lateness_collector_populated(self):
        sim, cluster = build()
        packets, _ = mpeg_packets(3.0)
        cluster.load_content("movie", "mpeg1", packets)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_done(view)

        drive(sim, scenario())
        collector = cluster.msus[0].iop.collector
        assert len(collector) == len(packets)
        assert collector.percent_within(150) > 99.0


class TestVcrIntegration:
    def test_pause_stops_delivery(self):
        sim, cluster = build()
        packets, _ = mpeg_packets(30.0)
        cluster.load_content("movie", "mpeg1", packets)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_ready(view)
            yield sim.timeout(2.0)
            client.vcr(view.group_id, m.VCR_PAUSE)
            yield sim.timeout(0.3)  # let the command land
            frozen = client.ports["tv"].stats.packets
            yield sim.timeout(3.0)
            assert client.ports["tv"].stats.packets == frozen
            client.vcr(view.group_id, m.VCR_PLAY)
            yield sim.timeout(2.0)
            assert client.ports["tv"].stats.packets > frozen
            client.quit(view.group_id)

        drive(sim, scenario())

    def test_seek_jumps_position(self):
        sim, cluster = build()
        packets, _ = mpeg_packets(30.0)
        cluster.load_content("movie", "mpeg1", packets)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_ready(view)
            yield sim.timeout(1.0)
            client.vcr(view.group_id, m.VCR_SEEK, position_seconds=25.0)
            yield sim.timeout(3.0)
            stream = cluster.msus[0].iop.play_streams[0]
            assert stream.position_us >= 24_000_000
            client.quit(view.group_id)

        drive(sim, scenario())

    def test_quit_frees_coordinator_resources(self):
        sim, cluster = build()
        packets, _ = mpeg_packets(30.0)
        cluster.load_content("movie", "mpeg1", packets)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_ready(view)
            yield sim.timeout(1.0)
            client.quit(view.group_id)
            yield sim.timeout(0.5)

        drive(sim, scenario())
        assert not cluster.coordinator.groups
        assert cluster.coordinator.db.msus["msu0"].delivery_used == 0.0


class TestRecording:
    def test_record_then_replay_roundtrip(self):
        sim, cluster = build()
        client = Client(sim, cluster, "c0")
        source = NvEncoder(seed=4).packets(3.0)
        rtp = []
        for i, packet in enumerate(source):
            header = RtpHeader(28, i, int(packet.delivery_us * 90 // 1000), 5)
            rtp.append((packet.delivery_us, header.pack() + packet.payload))

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("cam", "rtp-video")
            rec = yield from client.record("mymail", "rtp-video", "cam", 10.0)
            yield from client.wait_ready(rec)
            address = rec.record_addresses()["mymail"]
            yield from client.send_stream("cam", address, rtp)
            yield sim.timeout(0.2)
            client.quit(rec.group_id)
            yield from client.wait_done(rec)
            # Replay what we recorded.
            yield from client.register_port("tv2", "rtp-video")
            view = yield from client.play("mymail", "tv2")
            yield from client.wait_done(view)
            return client.ports["tv2"].stats

        stats = drive(sim, scenario())
        assert stats.packets == len(rtp)

    def test_unused_reservation_returned(self):
        sim, cluster = build()
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("cam", "mpeg1")
            rec = yield from client.record("tiny", "mpeg1", "cam", 120.0)
            yield from client.wait_ready(rec)
            address = rec.record_addresses()["tiny"]
            yield from client.send_stream("cam", address, [(0, b"x" * 500)])
            yield sim.timeout(0.2)
            client.quit(rec.group_id)
            yield from client.wait_done(rec)

        drive(sim, scenario())
        fs = cluster.msus[0].filesystems[
            cluster.coordinator.db.content("tiny").disk_id
        ]
        assert fs.allocator.reserved_blocks == 0
        # The recording used far fewer blocks than the 120 s estimate.
        assert fs.open("tiny").nblocks <= 2

    def test_composite_seminar_record_and_group_replay(self):
        sim, cluster = build()
        client = Client(sim, cluster, "c0")
        video, audio = [], []
        for i, p in enumerate(NvEncoder(seed=7).packets(2.0)):
            video.append(
                (p.delivery_us, RtpHeader(28, i, int(p.delivery_us * 90 // 1000), 9).pack() + p.payload)
            )
        for p in VatEncoder(seed=8).packets(2.0):
            audio.append(
                (p.delivery_us, VatHeader(0, 1, 3, int(p.delivery_us * 8 // 1000)).pack() + p.payload)
            )

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("v", "rtp-video")
            yield from client.register_port("a", "vat-audio")
            yield from client.register_composite_port("sem", "seminar", ["v", "a"])
            rec = yield from client.record("talk", "seminar", "sem", 10.0)
            yield from client.wait_ready(rec)
            addresses = rec.record_addresses()
            pv = sim.process(
                client.send_stream("v", addresses["talk.rtp-video"], video)
            )
            pa = sim.process(
                client.send_stream("a", addresses["talk.vat-audio"], audio)
            )
            yield pv
            yield pa
            yield sim.timeout(0.2)
            client.quit(rec.group_id)
            yield from client.wait_done(rec)
            view = yield from client.play("talk", "sem")
            yield from client.wait_done(view)
            return view

        view = drive(sim, scenario())
        assert client.ports["v"].stats.packets == len(video)
        assert client.ports["a"].stats.packets == len(audio)
        # Both members rode one group on one MSU (§2.2).
        assert len(view.ready_streams) == 2


class TestFastScanIntegration:
    def test_fast_forward_covers_content_faster(self):
        sim, cluster = build()
        stream = MpegEncoder(seed=2).bitstream(60.0)
        packets = packetize_cbr(stream, MPEG1_RATE, PACKET)
        cluster.load_content("movie", "mpeg1", packets)
        cluster.install_fast_scans("movie", stream, MPEG1_RATE, PACKET, step=15)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_ready(view)
            yield sim.timeout(2.0)
            client.vcr(view.group_id, m.VCR_FAST_FORWARD)
            yield sim.timeout(3.0)
            msu_stream = cluster.msus[0].iop.play_streams[0]
            assert msu_stream.handle.name == "movie.ff"
            # A few seconds of ff playback covered a large content span.
            from repro.core.msu.vcr import content_fraction

            fraction = content_fraction(msu_stream)
            client.vcr(view.group_id, m.VCR_NORMAL)
            yield sim.timeout(2.0)
            assert msu_stream.handle.name == "movie"
            client.quit(view.group_id)
            return fraction

        fraction = drive(sim, scenario())
        assert fraction > 0.2  # >12 s of content in ~3 s of wall time
