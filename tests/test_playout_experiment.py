"""E14: the client playout-quality experiment."""

import pytest

from repro.experiments.playout import format_playout, run_playout


class TestPlayoutExperiment:
    def test_inside_capacity_no_stalls(self):
        points = run_playout(stream_counts=(20,), duration=15.0)
        assert points[0].underflowing_streams == 0
        assert points[0].server_within_50ms > 0.99

    def test_beyond_capacity_stalls(self):
        points = run_playout(stream_counts=(26,), duration=25.0)
        assert points[0].underflowing_streams > 0
        assert points[0].total_stall_seconds > 0

    def test_format_contains_rows(self):
        points = run_playout(stream_counts=(20,), duration=10.0)
        text = format_playout(points)
        assert "20" in text and "stall" in text
