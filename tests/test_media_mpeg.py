"""Synthetic MPEG bitstream: structure, rates, packetization."""

import pytest

from repro.errors import ProtocolError
from repro.media import MpegEncoder, packetize_cbr, parse_frames
from repro.media.mpeg import GOP_PATTERN, PICTURE_START, SEQUENCE_START
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE


class TestEncoder:
    def test_gop_pattern_respected(self):
        frames = MpegEncoder().frames(45)
        for i, frame in enumerate(frames):
            assert frame.ftype == GOP_PATTERN[i % len(GOP_PATTERN)]

    def test_i_frames_largest(self):
        frames = MpegEncoder().frames(150)
        i_sizes = [len(f.payload) for f in frames if f.ftype == "I"]
        b_sizes = [len(f.payload) for f in frames if f.ftype == "B"]
        assert min(i_sizes) > max(b_sizes)

    def test_rate_close_to_nominal(self):
        duration = 30.0
        stream = MpegEncoder(seed=2).bitstream(duration)
        rate = len(stream) / duration
        assert rate == pytest.approx(MPEG1_RATE, rel=0.05)

    def test_payloads_free_of_start_codes(self):
        stream = MpegEncoder(seed=3).bitstream(5.0)
        # Beyond the legitimate start codes, no 00 00 01 may appear.
        frames = parse_frames(stream)
        for frame in frames:
            assert b"\x00\x00\x01" not in frame.payload

    def test_deterministic_for_seed(self):
        a = MpegEncoder(seed=9).bitstream(2.0)
        b = MpegEncoder(seed=9).bitstream(2.0)
        assert a == b

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MpegEncoder(rate=0)
        with pytest.raises(ValueError):
            MpegEncoder(gop="BBI")  # must start with I
        with pytest.raises(ValueError):
            MpegEncoder(gop="IXB")


class TestParse:
    def test_roundtrip(self):
        encoder = MpegEncoder(seed=4)
        frames = encoder.frames(30)
        stream = SEQUENCE_START + b"".join(f.encode() for f in frames)
        parsed = parse_frames(stream)
        assert [(f.number, f.ftype, f.payload) for f in parsed] == [
            (f.number, f.ftype, f.payload) for f in frames
        ]

    def test_missing_sequence_header(self):
        with pytest.raises(ProtocolError):
            parse_frames(PICTURE_START + b"junk")

    def test_truncated_frame(self):
        stream = MpegEncoder(seed=5).bitstream(1.0)
        with pytest.raises(ProtocolError):
            parse_frames(stream[:-10])


class TestPacketize:
    def test_schedule_is_constant_rate(self):
        stream = MpegEncoder(seed=6).bitstream(10.0)
        packets = packetize_cbr(stream, MPEG1_RATE, CBR_PACKET_SIZE)
        gaps = [
            b.delivery_us - a.delivery_us for a, b in zip(packets, packets[1:])
        ]
        expected = CBR_PACKET_SIZE / MPEG1_RATE * 1e6
        assert all(abs(g - expected) <= 1 for g in gaps)

    def test_reassembly_recovers_bitstream(self):
        stream = MpegEncoder(seed=7).bitstream(3.0)
        packets = packetize_cbr(stream, MPEG1_RATE, CBR_PACKET_SIZE)
        assert b"".join(p.payload for p in packets) == stream

    def test_bad_parameters(self):
        with pytest.raises(ProtocolError):
            packetize_cbr(b"x", 0, 100)
