"""The striped-MSU alternative (§2.3.3) running in the full system."""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import MpegEncoder, packetize_cbr
from repro.net import messages as m
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


def build():
    sim = Simulator()
    cluster = CalliopeCluster(
        sim, ClusterConfig(n_msus=1, ibtree_config=SMALL, striped_msus=True)
    )
    cluster.coordinator.db.add_customer("user")
    packets = packetize_cbr(MpegEncoder(seed=1).bitstream(5.0), MPEG1_RATE, 1024)
    cluster.load_content("movie", "mpeg1", packets)
    return sim, cluster, packets


class TestStripedMsu:
    def test_single_striped_volume(self):
        sim, cluster, _ = build()
        msu = cluster.msus[0]
        assert msu.striped
        assert msu.disk_ids() == ["msu0.striped"]

    def test_file_blocks_span_both_disks(self):
        sim, cluster, _ = build()
        msu = cluster.msus[0]
        fs = msu.filesystems["msu0.striped"]
        handle = fs.open("movie")
        disks = {fs.volume.disk_of(b) for b in handle.blocks}
        assert len(disks) == 2  # consecutive blocks on adjacent disks

    def test_playback_end_to_end(self):
        sim, cluster, packets = build()
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("movie", "tv")
            yield from client.wait_done(view)

        proc = sim.process(scenario())
        sim.run(until=120.0)
        assert proc.ok
        assert client.ports["tv"].stats.packets == len(packets)
        # Both physical disks did real work.
        transferred = [d.bytes_transferred for d in cluster.msus[0].machine.disks]
        assert all(t > 0 for t in transferred)

    def test_record_lands_striped(self):
        sim, cluster, _ = build()
        client = Client(sim, cluster, "c0")
        source = [(i * 20_000, bytes([i % 256]) * 900) for i in range(120)]

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("cam", "mpeg1")
            rec = yield from client.record("clip", "mpeg1", "cam", 30.0)
            yield from client.wait_ready(rec)
            address = rec.record_addresses()["clip"]
            yield from client.send_stream("cam", address, source)
            yield sim.timeout(0.2)
            client.quit(rec.group_id)
            yield from client.wait_done(rec)

        proc = sim.process(scenario())
        sim.run(until=120.0)
        assert proc.ok
        fs = cluster.msus[0].filesystems["msu0.striped"]
        handle = fs.open("clip")
        assert handle.nblocks >= 2
        disks = {fs.volume.disk_of(b) for b in handle.blocks}
        assert len(disks) == 2

    def test_vcr_seek_on_striped_content(self):
        sim, cluster, _ = build()
        packets = packetize_cbr(MpegEncoder(seed=2).bitstream(30.0), MPEG1_RATE, 1024)
        cluster.load_content("long-movie", "mpeg1", packets)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("long-movie", "tv")
            yield from client.wait_ready(view)
            yield sim.timeout(1.0)
            client.vcr(view.group_id, m.VCR_SEEK, 25.0)
            yield sim.timeout(2.0)
            stream = cluster.msus[0].iop.play_streams[0]
            assert stream.position_us >= 24_000_000
            client.quit(view.group_id)

        proc = sim.process(scenario())
        sim.run(until=60.0)
        assert proc.ok
