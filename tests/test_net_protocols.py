"""MSU protocol-extension modules: delivery-time derivation (§2.3.2)."""

import pytest

from repro.errors import ProtocolError
from repro.net import RtpHeader, VatHeader, default_registry
from repro.net.protocols import RawProtocol, RtpProtocol, VatProtocol
from repro.storage.ibtree import KIND_CONTROL, KIND_DATA


class TestRegistry:
    def test_defaults_installed(self):
        registry = default_registry()
        assert registry.names() == ["raw", "rtp", "vat"]

    def test_unknown_module_raises(self):
        with pytest.raises(ProtocolError):
            default_registry().get("mystery")

    def test_extensible(self):
        """§2.3.2: new protocols "can be added to the system easily"."""

        class H261(RawProtocol):
            name = "h261"

        registry = default_registry()
        registry.install(H261())
        assert registry.get("h261").name == "h261"


class TestRawProtocol:
    def test_delivery_from_arrival_relative_to_start(self):
        module = RawProtocol()
        ctx = module.new_context()
        assert module.delivery_time_us(b"x", 5_000_000, ctx) == 0
        assert module.delivery_time_us(b"x", 5_400_000, ctx) == 400_000

    def test_single_port(self):
        assert RawProtocol().playback_ports() == 1

    def test_everything_is_data(self):
        module = RawProtocol()
        assert module.classify(b"anything", module.new_context()) == KIND_DATA


class TestRtpProtocol:
    def _packet(self, ts):
        return RtpHeader(26, 0, ts, 1).pack() + b"video"

    def test_delivery_from_timestamp_ignores_network_jitter(self):
        """§2.3.2: the sender timestamp "does not include the effects of
        network-induced jitter"."""
        module = RtpProtocol()
        ctx = module.new_context()
        # Arrivals are jittered; timestamps are clean 90 kHz ticks.
        t0 = module.delivery_time_us(self._packet(0), 1_000_000, ctx)
        t1 = module.delivery_time_us(self._packet(9_000), 1_173_000, ctx)
        assert (t0, t1) == (0, 100_000)  # exactly the media clock spacing

    def test_two_ports(self):
        assert RtpProtocol().playback_ports() == 2

    def test_control_messages_classified(self):
        module = RtpProtocol()
        ctx = module.new_context()
        assert module.classify(self._packet(0), ctx) == KIND_DATA
        assert module.classify(b"RTCP-ish", ctx) == KIND_CONTROL

    def test_control_message_times_use_arrival(self):
        module = RtpProtocol()
        ctx = module.new_context()
        module.delivery_time_us(self._packet(0), 100, ctx)
        assert module.delivery_time_us(b"ctl", 600, ctx) == 500

    def test_backwards_timestamp_rejected(self):
        module = RtpProtocol()
        ctx = module.new_context()
        module.delivery_time_us(self._packet(90_000), 0, ctx)
        with pytest.raises(ProtocolError):
            module.delivery_time_us(self._packet(0), 10, ctx)


class TestVatProtocol:
    def test_delivery_from_8khz_timestamp(self):
        module = VatProtocol()
        ctx = module.new_context()
        first = VatHeader(0, 1, 1, 800).pack() + b"a" * 160
        second = VatHeader(0, 1, 1, 960).pack() + b"a" * 160
        assert module.delivery_time_us(first, 0, ctx) == 0
        assert module.delivery_time_us(second, 99_999, ctx) == 20_000
