"""Property test: snapshot+WAL replay reproduces any mutation sequence.

Hypothesis drives an arbitrary interleaving of AdminDatabase and
admission-book mutations against a journaled Coordinator — including
mid-sequence auto-snapshots, so most examples replay a snapshot *plus* a
WAL tail, not just one or the other.  A cold replay into a fresh
Coordinator must reproduce the same durable state byte-for-byte (modulo
the documented metric-counter drift) and the same admission books.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinator import Coordinator
from repro.errors import CalliopeError
from repro.recovery import JournalStore, recover, snapshot_state
from repro.sim import Simulator

_MSUS = ("msu0", "msu1")
_TITLES = ("m0", "m1", "m2")

#: One mutation: (op, index) where the index picks the target title/MSU.
_OPS = st.tuples(
    st.sampled_from([
        "add_content", "remove_content", "note_request", "note_played",
        "register_msu", "mark_msu_down", "adjust_free_blocks",
        "add_replica", "place_read", "release",
    ]),
    st.integers(0, 2),
)


def _build() -> Coordinator:
    coord = Coordinator(Simulator())
    coord.db.add_customer("user")
    for name in _MSUS:
        coord.db.register_msu(
            name, [(f"{name}.sd0", 5000), (f"{name}.sd1", 5000)],
            cache_bps=1e6,
        )
    return coord


def _apply(coord: Coordinator, held: list, op: str, i: int) -> None:
    """One mutation; ops that need absent preconditions are no-ops."""
    db = coord.db
    title = _TITLES[i]
    msu = _MSUS[i % len(_MSUS)]
    if op == "add_content":
        if title not in db.contents:
            coord.admin_add_content(title, "mpeg1", msu, f"{msu}.sd0", blocks=8)
    elif op == "remove_content":
        if title in db.contents and not db.contents[title].active_total():
            db.remove_content(title)
    elif op == "note_request":
        if title in db.contents:
            db.note_request(title)
    elif op == "note_played":
        if title in db.contents:
            db.note_played(title)
    elif op == "register_msu":
        db.register_msu(msu, [(f"{msu}.sd0", 4000 + i), (f"{msu}.sd1", 5000)])
    elif op == "mark_msu_down":
        db.mark_msu_down(msu)
    elif op == "adjust_free_blocks":
        if msu in db.msus and f"{msu}.sd0" in db.msus[msu].disks:
            db.adjust_free_blocks(msu, f"{msu}.sd0", -(i + 1))
    elif op == "add_replica":
        if title in db.contents and msu in db.msus:
            db.add_replica(title, msu, f"{msu}.sd1")
    elif op == "place_read":
        if title in db.contents:
            ctype = coord.types.get("mpeg1")
            try:
                alloc = coord.admission.place_read(db.contents[title], ctype)
            except CalliopeError:
                return
            if alloc is not None:
                held.append(alloc)
    elif op == "release":
        if held:
            coord.admission.release(held.pop(i % len(held)))


def _comparable(coord: Coordinator) -> str:
    state = snapshot_state(coord)
    for key in ("admitted", "queued", "rejected", "cache_admitted"):
        state["counters"].pop(key, None)
    return json.dumps(state, sort_keys=True)


@given(ops=st.lists(_OPS, max_size=60), snapshot_every=st.integers(4, 32))
@settings(max_examples=60, deadline=None)
def test_replay_reproduces_arbitrary_mutation_sequences(ops, snapshot_every):
    store = JournalStore(snapshot_every=snapshot_every)
    coord = _build()
    coord.attach_journal(store)
    held: list = []
    for op, i in ops:
        _apply(coord, held, op, i)
    clone = Coordinator(Simulator())
    recover(clone, store)
    assert _comparable(clone) == _comparable(coord)
    # The books specifically: every unreleased charge is present with the
    # exact same float totals, byte for byte.
    for name, state in coord.db.msus.items():
        replayed = clone.db.msus[name]
        assert replayed.active_streams == state.active_streams
        assert replayed.delivery_used == state.delivery_used
        for disk_id, disk in state.disks.items():
            assert replayed.disks[disk_id].bandwidth_used == disk.bandwidth_used
            assert replayed.disks[disk_id].free_blocks == disk.free_blocks
