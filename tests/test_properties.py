"""Cross-cutting property tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.msu.vcr import content_fraction, entry_position_us
from repro.core.msu.streams import PlayStream, RateVariant
from repro.hardware.params import TimerParams
from repro.hardware.timer import SystemTimer
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.net.protocols import RawProtocol
from repro.sim import Simulator
from repro.storage import IBTreeConfig, MsuFileSystem, RawDisk, SpanVolume


class TestTimerProperties:
    @given(
        granularity_ms=st.floats(0.1, 100.0),
        target=st.floats(0.0, 1000.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_tick_at_or_after_target_within_one_granularity(
        self, granularity_ms, target
    ):
        sim = Simulator()
        timer = SystemTimer(sim, TimerParams(granularity=granularity_ms / 1000.0))
        tick = timer.next_tick_at_or_after(target)
        g = granularity_ms / 1000.0
        assert tick >= target - 1e-9 * max(1.0, target)
        assert tick - target < g + 1e-6
        # Ticks are multiples of the granularity.
        assert abs(tick / g - round(tick / g)) < 1e-6

    @given(target=st.floats(0.0, 1000.0))
    @settings(max_examples=50, deadline=None)
    def test_zero_granularity_identity(self, target):
        timer = SystemTimer(Simulator(), TimerParams(granularity=0.0))
        assert timer.next_tick_at_or_after(target) == target


class TestVcrPositionProperties:
    def _stream(self, duration_us, variant=RateVariant.NORMAL):
        fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 16), 2048))
        handle = fs.create("x", "mpeg1")
        handle.duration_us = duration_us
        stream = PlayStream(
            1, 1, handle, RawProtocol(), 187_500.0, ("c", 1),
            IBTreeConfig(data_page_size=2048, internal_page_size=256, max_keys=8),
        )
        stream.variant = variant
        return stream, handle

    @given(
        duration=st.integers(1, 10**9),
        position=st.integers(0, 10**9),
    )
    @settings(max_examples=100, deadline=None)
    def test_content_fraction_in_unit_interval(self, duration, position):
        stream, _ = self._stream(duration)
        stream.position_us = min(position, duration)
        fraction = content_fraction(stream)
        assert 0.0 <= fraction <= 1.0

    @given(
        duration=st.integers(1, 10**9),
        fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_entry_position_within_file(self, duration, fraction):
        _, handle = self._stream(duration)
        for variant in RateVariant:
            position = entry_position_us(handle, variant, fraction)
            assert 0 <= position <= duration

    @given(duration=st.integers(100, 10**9), position=st.integers(0, 10**9))
    @settings(max_examples=100, deadline=None)
    def test_backward_flips_fraction(self, duration, position):
        stream, handle = self._stream(duration, RateVariant.FAST_BACKWARD)
        stream.position_us = min(position, duration)
        forward_equivalent = 1.0 - min(1.0, stream.position_us / duration)
        assert content_fraction(stream) == pytest.approx(
            forward_equivalent, abs=1e-6
        )


class TestPacketizeProperties:
    @given(
        nbytes=st.integers(1, 200_000),
        packet_size=st.integers(64, 8192),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_reassembly_and_schedule(self, nbytes, packet_size, seed):
        rng = np.random.default_rng(seed)
        blob = rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()
        packets = packetize_cbr(blob, 187_500.0, packet_size)
        # Exact reassembly.
        assert b"".join(p.payload for p in packets) == blob
        # Non-decreasing, evenly spaced schedule.
        times = [p.delivery_us for p in packets]
        assert times == sorted(times)
        assert times[0] == 0
        # All but the last packet are full-size.
        assert all(len(p.payload) == packet_size for p in packets[:-1])


class TestDeterminismProperties:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_mpeg_encoder_deterministic(self, seed):
        a = MpegEncoder(seed=seed).bitstream(1.0)
        b = MpegEncoder(seed=seed).bitstream(1.0)
        assert a == b

    @given(
        delays=st.lists(st.floats(0.001, 5.0), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_simulation_replays_identically(self, delays):
        def run():
            sim = Simulator()
            log = []

            def worker(i, delay):
                yield sim.timeout(delay)
                log.append((round(sim.now, 9), i))

            for i, delay in enumerate(delays):
                sim.process(worker(i, delay))
            sim.run()
            return log

        assert run() == run()
