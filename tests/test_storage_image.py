"""SparseImage and RawDisk: real bytes behind simulated timing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.hardware import Machine, MachineParams
from repro.sim import Simulator
from repro.storage import RawDisk, SparseImage
from tests.conftest import run_process


class TestSparseImage:
    def test_unwritten_reads_zero(self):
        image = SparseImage(1000)
        assert image.read(0, 10) == b"\x00" * 10

    def test_roundtrip(self):
        image = SparseImage(1000)
        image.write(100, b"hello")
        assert image.read(100, 5) == b"hello"
        assert image.read(99, 7) == b"\x00hello\x00"

    def test_cross_page_write(self):
        image = SparseImage(300_000, page_size=1024)
        data = bytes(range(256)) * 20  # spans several pages
        image.write(1000, data)
        assert image.read(1000, len(data)) == data

    def test_bounds_checked(self):
        image = SparseImage(100)
        with pytest.raises(StorageError):
            image.write(90, b"x" * 20)
        with pytest.raises(StorageError):
            image.read(-1, 5)
        with pytest.raises(ValueError):
            image.read(0, -5)

    def test_resident_bytes_grow_lazily(self):
        image = SparseImage(10_000_000, page_size=4096)
        assert image.resident_bytes == 0
        image.write(0, b"x")
        assert image.resident_bytes == 4096

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 9000), st.binary(min_size=1, max_size=600)),
            max_size=25,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_bytearray(self, writes):
        image = SparseImage(10_000, page_size=256)
        reference = bytearray(10_000)
        for offset, data in writes:
            data = data[: 10_000 - offset]
            if not data:
                continue
            image.write(offset, data)
            reference[offset : offset + len(data)] = data
        assert image.read(0, 10_000) == bytes(reference)


class TestRawDisk:
    def test_requires_drive_or_capacity(self):
        with pytest.raises(ValueError):
            RawDisk(None)

    def test_driveless_disk_is_instant(self, sim):
        raw = RawDisk(None, capacity=10_000)

        def proc():
            yield from raw.write(0, b"abc")
            data = yield from raw.read(0, 3)
            return data

        assert run_process(sim, proc()) == b"abc"
        assert sim.now == 0.0

    def test_simulated_disk_costs_time_and_stores_bytes(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        raw = RawDisk(machine.disks[0])

        def proc():
            yield from raw.write(4096, b"payload")
            data = yield from raw.read(4096, 7)
            return data

        assert run_process(sim, proc()) == b"payload"
        assert sim.now > 0.0

    def test_sync_paths_cost_no_time(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        raw = RawDisk(machine.disks[0])
        raw.write_sync(0, b"admin")
        assert raw.read_sync(0, 5) == b"admin"
        assert sim.now == 0.0

    def test_capacity_cannot_exceed_drive(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        with pytest.raises(StorageError):
            RawDisk(machine.disks[0], capacity=machine.disks[0].params.capacity_bytes * 2)
