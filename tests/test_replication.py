"""Content replication across disks (§2.3.3 extension) and failure/rejoin."""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.core.database import ContentEntry
from repro.core.replication import ReplicationManager
from repro.errors import CalliopeError
from repro.media import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


def build(n_msus=1):
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=n_msus, ibtree_config=SMALL))
    cluster.coordinator.db.add_customer("user")
    packets = packetize_cbr(MpegEncoder(seed=1).bitstream(4.0), MPEG1_RATE, 1024)
    cluster.load_content("hot", "mpeg1", packets, disk_index=0)
    sim.run(until=0.01)  # hellos land
    return sim, cluster, packets


class TestContentEntryLocations:
    def test_primary_first(self):
        entry = ContentEntry("x", "mpeg1", "msu0", "d0")
        entry.add_replica("msu1", "d3")
        assert entry.locations() == [("msu0", "d0"), ("msu1", "d3")]

    def test_duplicate_replica_ignored(self):
        entry = ContentEntry("x", "mpeg1", "msu0", "d0")
        entry.add_replica("msu0", "d0")
        assert entry.locations() == [("msu0", "d0")]


class TestReplicate:
    def test_copy_is_byte_identical_and_playable(self):
        sim, cluster, packets = build()
        manager = ReplicationManager(cluster)
        entry = cluster.coordinator.db.content("hot")
        target_disk = cluster.msus[0].disk_ids()[1]
        decision = manager.replicate("hot", "msu0", target_disk)
        assert decision.target == ("msu0", target_disk)
        source_fs = cluster.msus[0].filesystems[entry.disk_id]
        target_fs = cluster.msus[0].filesystems[target_disk]
        src, dst = source_fs.open("hot"), target_fs.open("hot")
        assert src.nblocks == dst.nblocks
        for i in range(src.nblocks):
            assert source_fs.read_block_sync(src, i) == target_fs.read_block_sync(dst, i)
        assert dst.root == src.root and dst.duration_us == src.duration_us

    def test_duplicate_copy_rejected(self):
        sim, cluster, _ = build()
        manager = ReplicationManager(cluster)
        entry = cluster.coordinator.db.content("hot")
        with pytest.raises(CalliopeError):
            manager.replicate("hot", entry.msu_name, entry.disk_id)

    def test_placement_load_balances_across_replicas(self):
        sim, cluster, _ = build()
        manager = ReplicationManager(cluster)
        target_disk = cluster.msus[0].disk_ids()[1]
        manager.replicate("hot", "msu0", target_disk)
        entry = cluster.coordinator.db.content("hot")
        ctype = cluster.coordinator.types.get("mpeg1")
        admission = cluster.coordinator.admission
        disks_used = set()
        for _ in range(4):
            alloc = admission.place_read(entry, ctype)
            disks_used.add(alloc.disk_id)
        assert len(disks_used) == 2  # both copies serve

    def test_rebalance_copies_hot_loaded_content(self):
        sim, cluster, _ = build()
        db = cluster.coordinator.db
        entry = db.content("hot")
        entry.play_count = 10
        home = db.disk(entry.msu_name, entry.disk_id)
        home.bandwidth_used = home.bandwidth_capacity * 0.9  # loaded
        manager = ReplicationManager(cluster)
        made = manager.rebalance()
        assert len(made) == 1
        assert len(entry.locations()) == 2

    def test_rebalance_skips_cold_or_idle_content(self):
        sim, cluster, _ = build()
        manager = ReplicationManager(cluster)
        assert manager.rebalance() == []  # no plays, home disk idle

    def test_play_counts_tracked_by_coordinator(self):
        sim, cluster, _ = build()
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("hot", "tv")
            yield from client.wait_done(view)

        proc = sim.process(scenario())
        sim.run(until=60.0)
        assert proc.ok
        assert cluster.coordinator.db.content("hot").play_count == 1


class TestFailureInjection:
    def test_fail_marks_msu_down_and_rejoin_restores(self):
        sim, cluster, _ = build()
        cluster.fail_msu(0)
        sim.run(until=sim.now + 0.1)
        assert not cluster.coordinator.db.msus["msu0"].available
        cluster.rejoin_msu(0)
        sim.run(until=sim.now + 0.1)
        assert cluster.coordinator.db.msus["msu0"].available

    def test_content_survives_failure_and_plays_after_rejoin(self):
        sim, cluster, packets = build()
        cluster.fail_msu(0)
        sim.run(until=sim.now + 0.1)
        cluster.rejoin_msu(0)
        sim.run(until=sim.now + 0.1)
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("hot", "tv")
            yield from client.wait_done(view)

        proc = sim.process(scenario())
        sim.run(until=120.0)
        assert proc.ok
        assert client.ports["tv"].stats.packets == len(packets)

    def test_request_queued_during_outage_served_on_rejoin(self):
        sim, cluster, packets = build()
        client = Client(sim, cluster, "c0")
        cluster.fail_msu(0)
        sim.run(until=sim.now + 0.1)

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play("hot", "tv")  # parks in the queue
            yield from client.wait_done(view)

        proc = sim.process(scenario())
        sim.run(until=sim.now + 1.0)
        assert len(cluster.coordinator.admission.queue) == 1
        cluster.rejoin_msu(0)
        sim.run(until=sim.now + 60.0)
        assert proc.ok
        assert client.ports["tv"].stats.packets == len(packets)
