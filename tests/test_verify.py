"""The chaos harness itself: schedules, invariants, shrinking, repros.

The pinned-seed regression tests at the bottom replay the shrunk fault
plans that first exposed real cross-subsystem bugs (see DESIGN.md §9);
each must stay green forever.
"""

import pytest

from repro.tools import cli
from repro.verify import (
    ChaosConfig,
    ChaosSchedule,
    InvariantRegistry,
    Violation,
    builtin_registry,
    load_repro,
    run_schedule,
    shrink,
    write_repro,
)
from repro.verify.faults import FAULT_KINDS, FaultOp


def plan(seed, ops, horizon=20.0):
    """A literal fault plan: [(at, kind, args), ...] -> ChaosSchedule."""
    return ChaosSchedule(
        seed=seed, horizon=horizon,
        ops=tuple(FaultOp(at, kind, dict(args)) for at, kind, args in ops),
    )


class TestChaosSchedule:
    def test_generation_is_deterministic(self):
        a = ChaosSchedule.generate(42, 30)
        b = ChaosSchedule.generate(42, 30)
        assert a == b
        assert len(a) == 30
        assert all(0.5 <= op.at < a.horizon for op in a.ops)
        assert all(op.kind in FAULT_KINDS for op in a.ops)
        assert list(a.ops) == sorted(a.ops, key=lambda o: (o.at, o.kind))

    def test_distinct_seeds_differ(self):
        assert ChaosSchedule.generate(1, 30) != ChaosSchedule.generate(2, 30)

    def test_json_round_trip(self):
        schedule = ChaosSchedule.generate(5, 20)
        assert ChaosSchedule.from_json(schedule.to_json()) == schedule

    def test_without_and_with_op(self):
        schedule = ChaosSchedule.generate(5, 10)
        smaller = schedule.without([0, 3, 9])
        assert len(smaller) == 7
        assert smaller.seed == schedule.seed
        extra = FaultOp(1.0, "msu_crash", {"msu": 0})
        grown = smaller.with_op(extra)
        assert len(grown) == 8 and extra in grown.ops

    def test_repro_file_round_trip(self, tmp_path):
        schedule = ChaosSchedule.generate(9, 6)
        path = write_repro(schedule, tmp_path / "repro.json")
        assert load_repro(path) == schedule


def _fake_cluster(now=2.0):
    from types import SimpleNamespace

    return SimpleNamespace(sim=SimpleNamespace(now=now))


class TestInvariantRegistry:
    def test_register_and_filter_by_phase(self):
        registry = InvariantRegistry()
        calls = []

        def checker(cluster):
            calls.append(cluster.sim.now)
            return ["always unhappy"]

        registry.register("demo", checker, when="drain")
        assert "demo" in registry.names()
        assert registry.check(_fake_cluster(1.0), phase="mid") == []
        violations = registry.check(_fake_cluster(2.0), phase="drain")
        assert [(v.invariant, v.detail, v.at, v.phase) for v in violations] == [
            ("demo", "always unhappy", 2.0, "drain")
        ]
        assert calls == [2.0]

    def test_builtin_registry_covers_the_subsystems(self):
        names = set(builtin_registry().names())
        for expected in (
            "admission-books", "multicast-ledger", "cache-balance",
            "failover-groups", "storage-bounds", "stream-deadlines",
        ):
            assert expected in names

    def test_checker_exception_becomes_violation(self):
        registry = InvariantRegistry()

        def broken(cluster):
            raise RuntimeError("checker blew up")

        registry.register("broken", broken, when="both")
        violations = registry.check(_fake_cluster(), phase="mid")
        assert len(violations) == 1
        assert "checker blew up" in violations[0].detail


@pytest.mark.integration
class TestHarness:
    def test_quiet_schedule_is_green(self, chaos_cluster):
        report = chaos_cluster(3, ops=10)
        assert report.ok, report.summary()
        assert report.checks_run > 0
        assert report.stats.get("joins", 0) > 0

    def test_double_charge_is_caught_and_shrunk(self):
        base = ChaosSchedule.generate(6, 4)
        schedule = base.with_op(FaultOp(9.1234, "bug_double_charge", {}))
        report = run_schedule(schedule)
        assert not report.ok
        assert any("multicast-ledger" in str(v) for v in report.violations)
        small, small_report = shrink(schedule)
        assert not small_report.ok
        assert len(small) <= 3  # the acceptance bar; in practice 1
        assert any(op.kind == "bug_double_charge" for op in small.ops)


@pytest.mark.integration
class TestCliVerify:
    def test_parse_seeds(self):
        assert cli._parse_seeds("7") == [7]
        assert cli._parse_seeds("1..5") == [1, 2, 3, 4, 5]

    def test_verify_seed_green(self, capsys):
        assert cli.main(["verify", "--seed", "3", "--ops", "10"]) == 0
        out = capsys.readouterr().out
        assert "seed 3" in out and "OK" in out

    def test_verify_replay_of_failing_repro(self, tmp_path, capsys):
        schedule = ChaosSchedule(
            seed=1, horizon=20.0,
            ops=(FaultOp(9.0, "bug_double_charge", {}),),
        )
        source = write_repro(schedule, tmp_path / "bad.json")
        out_path = tmp_path / "shrunk.json"
        rc = cli.main([
            "verify", "--replay", str(source), "--repro", str(out_path),
        ])
        assert rc == 1
        assert out_path.exists()
        replay = load_repro(out_path)
        assert all(op.kind == "bug_double_charge" for op in replay.ops)
        assert "VIOLATIONS" in capsys.readouterr().out


#: Shrunk fault plans that exposed real bugs; each replay must stay green.
#:
#: seed 7  - a failover ResumePlay raced with msu_hang: the frozen MSU's
#:           control loop installed the group anyway, so after rejoin the
#:           same group lived on two MSUs (fix: _control_loop drops
#:           messages once the MSU is down or the channel is stale).
#: seed 23 - a VCR "play" landed on a freshly-downgraded, still-LOADING
#:           subscriber stream; resume() promoted it to PLAYING with no
#:           anchor and the deadline lookup killed the whole IOP (fix:
#:           resume() only acts on PAUSED streams).
#: seed 24 - an MSU crash interrupted a disk process parked at the drive
#:           arm's grant wait; the granted request's owner was gone, so
#:           _arm_busy stayed True and every later transfer on the drive
#:           queued forever (fix: transfer() retracts or releases the
#:           grant when interrupted there).
PINNED_PLANS = {
    "hung-msu-installs-group": plan(7, [
        (2.1748, "client_join", {"title": 1, "patience": 4.22}),
        (4.8111, "msu_hang", {"msu": 0}),
        (4.8445, "msu_crash", {"msu": 1}),
    ]),
    "resume-without-anchor-kills-iop": plan(23, [
        (5.5392, "client_join", {"title": 0, "patience": 4.12}),
        (5.8735, "msu_hang", {"msu": 1}),
        (8.7631, "msu_crash", {"msu": 0}),
        (10.2157, "client_join", {"title": 1, "patience": 3.08}),
        (10.4267, "msu_powercycle", {"msu": 1}),
        (10.8149, "client_join", {"title": 0, "patience": 2.76}),
        (12.2989, "client_join", {"title": 1, "patience": 3.22}),
        (12.6093, "vcr_storm",
         {"pick": 47551, "commands": ["seek", "seek", "play"],
          "position": 5.81}),
    ]),
    "interrupted-grant-wedges-drive": plan(24, [
        (4.9152, "client_join", {"title": 1, "patience": 3.43}),
        (5.1301, "client_join", {"title": 0, "patience": 2.56}),
        (5.2308, "msu_powercycle", {"msu": 1}),
        (5.6468, "client_join", {"title": 1, "patience": 3.66}),
        (6.0017, "vcr_storm",
         {"pick": 30434, "commands": ["pause", "seek", "play"],
          "position": 1.5}),
        (6.2299, "client_join", {"title": 0, "patience": 4.4}),
        (6.6111, "msu_crash", {"msu": 0}),
        (7.8425, "msu_powercycle", {"msu": 1}),
    ]),
    # Coordinator-recovery scenarios (pinned by construction, not shrunk):
    # a kill/restart mid-schedule with admitted streams riding through the
    # outage, an MSU dying *during* the outage so reconciliation must
    # declare it failed from a missing StateReport, and a crash the drain
    # itself has to recover from.  All must end with zero violations.
    "coordinator-crash-restart-mid-stream": plan(31, [
        (1.0, "client_join", {"title": 0, "patience": 4.0}),
        (1.2, "client_join", {"title": 1, "patience": 4.0}),
        (3.5, "coordinator_crash", {}),
        (4.0, "client_join", {"title": 0, "patience": 3.0}),
        (6.0, "coordinator_restart", {}),
        (7.0, "client_join", {"title": 1, "patience": 4.0}),
    ]),
    "coordinator-outage-msu-churn": plan(32, [
        (1.0, "client_join", {"title": 0, "patience": 4.0}),
        (2.0, "client_join", {"title": 1, "patience": 4.0}),
        (3.0, "coordinator_crash", {}),
        (3.8, "msu_crash", {"msu": 1}),
        (5.5, "coordinator_restart", {}),
        (6.5, "msu_rejoin", {"msu": 1}),
        (8.0, "client_join", {"title": 0, "patience": 4.0}),
    ]),
    "coordinator-down-until-drain": plan(33, [
        (1.0, "client_join", {"title": 0, "patience": 4.0}),
        (2.0, "client_join", {"title": 1, "patience": 4.0}),
        (2.5, "vcr_storm",
         {"pick": 11, "commands": ["pause", "play"], "position": 1.0}),
        (10.0, "coordinator_crash", {}),
        (12.0, "client_join", {"title": 0, "patience": 3.0}),
    ]),
    # Shrunk from generated seed 1 (50 ops): an edge-covered patch serve
    # was live when the edge and its backing MSU both died *during* a
    # Coordinator outage, so no edge_down ever refunded it; the restarted
    # Coordinator replayed the serve record from the WAL while failover
    # re-admitted the orphaned subscriber with a fresh MSU allocation —
    # the same stream charged twice (fix: reconcile_edges refunds serves
    # of edges that never re-attach, the silent-MSU rule applied to the
    # edge tier).
    "stale-edge-serve-survives-restart": plan(1, [
        (8.2476, "client_join", {"title": 0, "patience": 3.34}),
        (9.4531, "client_join", {"title": 0, "patience": 3.15}),
        (10.373, "coordinator_crash", {}),
        (15.6796, "edge_crash", {"edge": 0}),
        (16.1356, "msu_crash", {"msu": 0}),
        (16.7974, "coordinator_restart", {}),
    ]),
}


@pytest.mark.integration
@pytest.mark.parametrize("name", sorted(PINNED_PLANS))
def test_pinned_regression(name):
    report = run_schedule(PINNED_PLANS[name])
    assert report.ok, f"{name}: {[str(v) for v in report.violations]}"
