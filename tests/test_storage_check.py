"""The MSU fsck: clean systems pass, injected damage is found."""

import numpy as np
import pytest

from repro.storage import (
    IBTreeConfig,
    IBTreeWriter,
    MsuFileSystem,
    PacketRecord,
    RawDisk,
    SpanVolume,
)
from repro.storage.check import check_filesystem

CONFIG = IBTreeConfig(data_page_size=2048, internal_page_size=256, max_keys=8)


def build_fs(nfiles=2, npackets=120, seed=0):
    fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 512), 2048))
    rng = np.random.default_rng(seed)
    for f in range(nfiles):
        handle = fs.create(f"file{f}", "mpeg1")
        writer = IBTreeWriter(CONFIG)
        t = 0
        for _ in range(npackets):
            t += int(rng.integers(0, 30_000))
            payload = rng.integers(0, 256, int(rng.integers(1, 150)),
                                   dtype=np.uint8).tobytes()
            page = writer.feed(PacketRecord(t, payload))
            if page is not None:
                fs.append_block_sync(handle, page)
        pages, root = writer.finish()
        for page in pages:
            fs.append_block_sync(handle, page)
        handle.root = root
    return fs


class TestCleanSystems:
    def test_fresh_fs_is_clean(self):
        fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 64), 2048))
        report = check_filesystem(fs, CONFIG)
        assert report.clean
        assert report.files_checked == 0

    def test_populated_fs_is_clean(self):
        fs = build_fs()
        report = check_filesystem(fs, CONFIG)
        assert report.clean, report.errors
        assert report.files_checked == 2
        assert report.pages_checked > 0

    def test_open_reservations_are_legitimate(self):
        fs = build_fs(nfiles=1)
        fs.create("recording", "mpeg1", reserve_blocks=10)
        report = check_filesystem(fs, CONFIG)
        assert report.clean, report.errors


class TestInjectedDamage:
    def test_double_claimed_block_detected(self):
        fs = build_fs()
        a, b = fs.open("file0"), fs.open("file1")
        b.blocks[0] = a.blocks[0]  # aliasing
        report = check_filesystem(fs, CONFIG)
        assert any("claimed by both" in e for e in report.errors)

    def test_out_of_range_block_detected(self):
        fs = build_fs()
        fs.open("file0").blocks[0] = 10**6
        report = check_filesystem(fs, CONFIG)
        assert any("out of range" in e for e in report.errors)

    def test_bitmap_leak_detected(self):
        fs = build_fs()
        fs.allocator.alloc()  # allocated, owned by no file
        report = check_filesystem(fs, CONFIG)
        assert any("owned by no file" in e for e in report.errors)

    def test_unmarked_block_detected(self):
        fs = build_fs()
        block = fs.open("file0").blocks[1]
        fs.allocator.free(block)
        report = check_filesystem(fs, CONFIG)
        assert any("not marked" in e for e in report.errors)

    def test_corrupt_page_detected(self):
        fs = build_fs()
        handle = fs.open("file0")
        fs.volume.write_block_sync(handle.blocks[0], b"\xde\xad" * 512)
        report = check_filesystem(fs, CONFIG)
        assert any("corrupt" in e for e in report.errors)

    def test_bad_root_detected(self):
        fs = build_fs()
        fs.open("file0").root = (10**4, 0, 0)
        report = check_filesystem(fs, CONFIG)
        assert any("root page" in e for e in report.errors)

    def test_time_order_violation_detected(self):
        fs = build_fs(nfiles=1)
        handle = fs.open("file0")
        # Swap two data pages: the scan's delivery order breaks.
        handle.blocks[0], handle.blocks[1] = handle.blocks[1], handle.blocks[0]
        report = check_filesystem(fs, CONFIG)
        assert any("order" in e for e in report.errors)

    def test_metadata_block_claim_detected(self):
        fs = build_fs()
        fs.open("file0").blocks[0] = 0  # the superblock region
        report = check_filesystem(fs, CONFIG)
        assert any("metadata region" in e for e in report.errors)
