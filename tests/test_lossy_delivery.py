"""Playback over a lossy delivery network, measured like an MBone tool.

§2.2.1 assumes "clients will have to be able to handle the jitter
introduced by the multimedia delivery network anyway"; these tests put a
lossy, jittery wire between the MSU and the client and verify the server
keeps its schedule while the client's RTP statistics see exactly the
wire's losses.
"""

import pytest

from repro.clients import Client, RtpReceiverStats
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import NvEncoder
from repro.net.rtp import RtpHeader
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import ms

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


def build(loss_rate, jitter=0.0):
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
    cluster.delivery_net.loss_rate = loss_rate
    cluster.delivery_net.jitter = jitter
    cluster.coordinator.db.add_customer("user")
    packets = []
    for i, p in enumerate(NvEncoder(seed=5).packets(6.0)):
        header = RtpHeader(28, i & 0xFFFF, int(p.delivery_us * 90 // 1000), 7)
        packets.append((p.delivery_us, header.pack() + p.payload))
    cluster.load_content("talk", "rtp-video", packets)
    return sim, cluster, packets


def play_through(sim, cluster, capture=True):
    client = Client(sim, cluster, "c0")

    def scenario():
        yield from client.open_session("user")
        yield from client.register_port("tv", "rtp-video", capture_payloads=capture)
        view = yield from client.play("talk", "tv")
        yield from client.wait_done(view)

    proc = sim.process(scenario())
    sim.run(until=120.0)
    assert proc.ok
    return client


class TestLossyDelivery:
    def test_server_unaffected_by_wire_loss(self):
        sim, cluster, packets = build(loss_rate=0.1)
        client = play_through(sim, cluster, capture=False)
        msu = cluster.msus[0]
        # The MSU sent everything on schedule; the wire ate some of it.
        assert msu.iop.packets_sent == len(packets)
        assert client.ports["tv"].stats.packets < len(packets)
        assert msu.iop.collector.percent_within(150) > 99.0

    def test_client_rtp_stats_account_for_losses(self):
        sim, cluster, packets = build(loss_rate=0.08)
        client = play_through(sim, cluster)
        stats = RtpReceiverStats()
        for payload in client.ports["tv"].stats.payloads:
            stats.feed(payload)
        lost_on_wire = cluster.delivery_net.datagrams_lost
        assert stats.received == len(packets) - lost_on_wire
        # Interior losses are all visible to the sequence tracker.
        assert stats.lost <= lost_on_wire
        assert stats.lost >= lost_on_wire - 25  # tail losses are invisible
        assert stats.loss_fraction == pytest.approx(0.08, abs=0.04)

    def test_wire_jitter_rides_on_server_schedule(self):
        sim, cluster, packets = build(loss_rate=0.0, jitter=ms(40.0))
        client = play_through(sim, cluster, capture=False)
        assert client.ports["tv"].stats.packets == len(packets)
        # All packets arrive despite 0-40 ms of wire jitter; the client
        # playout buffer (200 KB ~ 1 s) absorbs far more than this.
        span = (
            client.ports["tv"].stats.last_arrival
            - client.ports["tv"].stats.first_arrival
        )
        assert span == pytest.approx(6.0, abs=0.5)
