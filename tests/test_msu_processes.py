"""Disk process duty cycle and the network process (IOP) pacing."""

import pytest

from repro.core.msu.disk_process import DiskProcess
from repro.core.msu.network_process import NetworkProcess
from repro.core.msu.streams import PlayStream, RecordStream, StreamState
from repro.hardware import Machine, MachineParams
from repro.hardware.params import FDDI
from repro.net import Host, Network
from repro.net.protocols import RawProtocol
from repro.sim import Simulator
from repro.storage import (
    IBTreeConfig,
    IBTreeWriter,
    MsuFileSystem,
    PacketRecord,
    RawDisk,
    SpanVolume,
)

CONFIG = IBTreeConfig(data_page_size=4096, internal_page_size=512, max_keys=8)


def build_fs(sim, with_drive=True):
    machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
    raw = RawDisk(machine.disks[0]) if with_drive else RawDisk(None, capacity=4096 * 512)
    return MsuFileSystem(SpanVolume(raw, CONFIG.data_page_size)), machine


def load_file(fs, name, npackets, gap_us=25_000, size=900):
    handle = fs.create(name, "mpeg1")
    writer = IBTreeWriter(CONFIG)
    t = 0
    for i in range(npackets):
        page = writer.feed(PacketRecord(t, bytes([i % 256]) * size))
        t += gap_us
        if page is not None:
            fs.append_block_sync(handle, page)
    pages, root = writer.finish()
    for page in pages:
        fs.append_block_sync(handle, page)
    handle.root = root
    handle.duration_us = t
    return handle


def make_play(handle, stream_id=1, group=1):
    return PlayStream(
        stream_id, group, handle, RawProtocol(), 187_500.0,
        ("client", 5000), CONFIG,
    )


class TestDiskProcess:
    def test_fills_both_buffers(self, sim):
        fs, _ = build_fs(sim)
        handle = load_file(fs, "m", 40)
        proc = DiskProcess(sim, fs, "d0")
        stream = make_play(handle)
        proc.add_play(stream)
        sim.run(until=2.0)
        assert stream.double_buffered
        assert proc.pages_read == 2

    def test_round_robin_across_streams(self, sim):
        fs, _ = build_fs(sim)
        handle = load_file(fs, "m", 60)
        proc = DiskProcess(sim, fs, "d0")
        streams = [make_play(handle, stream_id=i) for i in range(4)]
        loads = []
        proc.on_page_loaded = lambda s: loads.append(s.stream_id)
        for stream in streams:
            proc.add_play(stream)
        sim.run(until=3.0)
        # One page per stream per cycle: first four loads hit four streams.
        assert sorted(loads[:4]) == [0, 1, 2, 3]

    def test_record_pages_written(self, sim):
        fs, _ = build_fs(sim)
        handle = fs.create("rec", "")
        proc = DiskProcess(sim, fs, "d0")
        stream = RecordStream(9, 9, handle, RawProtocol(), CONFIG)
        for i in range(40):
            stream.accept(b"z" * 900, now=float(i) * 0.01)
        proc.add_record(stream)
        sim.run(until=3.0)
        assert proc.pages_written >= 1
        assert handle.nblocks == proc.pages_written

    def test_record_drain_callback(self, sim):
        fs, _ = build_fs(sim)
        handle = fs.create("rec", "")
        drained = []
        proc = DiskProcess(sim, fs, "d0", on_record_drained=drained.append)
        stream = RecordStream(9, 9, handle, RawProtocol(), CONFIG)
        stream.accept(b"z" * 500, now=0.0)
        stream.begin_finish()
        proc.add_record(stream)
        sim.run(until=2.0)
        assert drained == [stream]
        assert stream not in proc.record_streams

    def test_remove_stops_service(self, sim):
        fs, _ = build_fs(sim)
        handle = load_file(fs, "m", 60)
        proc = DiskProcess(sim, fs, "d0")
        stream = make_play(handle)
        proc.add_play(stream)
        sim.run(until=1.0)
        proc.remove(stream)
        pages = proc.pages_read
        stream.buffers.clear()
        sim.run(until=3.0)
        assert proc.pages_read == pages


class _Rig:
    """A minimal MSU: one disk process + one IOP + a client socket."""

    def __init__(self, sim):
        self.sim = sim
        self.fs, self.machine = build_fs(sim)
        self.nic = self.machine.add_nic(FDDI)
        self.net = Network(sim, latency=0.0)
        self.host = Host(sim, self.net, "msu", machine=self.machine, nic=self.nic)
        self.client = Host(sim, self.net, "client")
        self.client_sock = self.client.bind(5000)
        self.socket = self.host.bind(4000)
        self.done = []
        self.iop = NetworkProcess(
            sim, self.socket, self.machine.timer, on_stream_done=self.done.append
        )
        self.disk = DiskProcess(
            sim, self.fs, "d0", on_page_loaded=lambda s: self.iop.wakeup.set()
        )
        self.iop.disk_kick = lambda s: self.disk.wakeup.set()

    def play(self, handle, stream_id=1, group=1):
        stream = make_play(handle, stream_id, group)
        self.disk.add_play(stream)
        self.iop.add_play(stream)
        return stream


class TestNetworkProcess:
    def test_stream_plays_to_completion(self, sim):
        rig = _Rig(sim)
        handle = load_file(rig.fs, "m", 30)
        stream = rig.play(handle)
        sim.run(until=5.0)
        assert rig.done == [stream]
        assert stream.packets_sent == 30
        assert rig.client_sock.received == 30

    def test_lateness_recorded_per_packet(self, sim):
        rig = _Rig(sim)
        handle = load_file(rig.fs, "m", 30)
        rig.play(handle)
        sim.run(until=5.0)
        assert len(rig.iop.collector) == 30
        assert rig.iop.collector.max_lateness_ms() < 100

    def test_pacing_close_to_schedule(self, sim):
        rig = _Rig(sim)
        handle = load_file(rig.fs, "m", 30, gap_us=40_000)
        stream = rig.play(handle)
        arrivals = []
        rig.client_sock.notify = lambda: arrivals.append(sim.now)
        sim.run(until=5.0)
        spans = [b - a for a, b in zip(arrivals, arrivals[1:])]
        # Nominal 40 ms gaps, quantized by the 10 ms timer.
        assert all(0.0 <= s <= 0.08 for s in spans)
        assert sum(spans) / len(spans) == pytest.approx(0.040, abs=0.01)

    def test_group_members_anchor_together(self, sim):
        rig = _Rig(sim)
        a = load_file(rig.fs, "a", 20)
        b = load_file(rig.fs, "b", 20)
        sa = rig.play(a, stream_id=1, group=7)
        sb = rig.play(b, stream_id=2, group=7)
        sim.run(until=4.0)
        assert sa.anchor == sb.anchor

    def test_single_member_group_starts_alone(self, sim):
        rig = _Rig(sim)
        a = load_file(rig.fs, "a", 200)
        sa = rig.play(a, stream_id=1, group=7)
        sim.run(until=2.0)
        assert sa.state is StreamState.PLAYING
        assert sa.packets_sent > 0

    def test_hold_and_release_starts(self, sim):
        rig = _Rig(sim)
        handle = load_file(rig.fs, "m", 20)
        rig.iop.hold_starts = True
        stream = rig.play(handle)
        sim.run(until=2.0)
        assert stream.state is StreamState.LOADING
        assert rig.iop.all_loaded()
        rig.iop.release_starts()
        sim.run(until=5.0)
        assert stream.state is StreamState.DONE

    def test_release_with_stagger_shifts_anchor(self, sim):
        rig = _Rig(sim)
        a = load_file(rig.fs, "a", 20)
        b = load_file(rig.fs, "b", 20)
        rig.iop.hold_starts = True
        sa = rig.play(a, stream_id=1, group=1)
        sb = rig.play(b, stream_id=2, group=2)
        sim.run(until=2.0)
        rig.iop.release_starts({1: 0.0, 2: 0.5})
        assert sb.anchor - sa.anchor == pytest.approx(0.5)

    def test_recording_ingest(self, sim):
        rig = _Rig(sim)
        handle = rig.fs.create("rec", "")
        stream = RecordStream(5, 5, handle, RawProtocol(), CONFIG)
        rec_sock = rig.host.bind(4500)
        rig.iop.add_record(stream, rec_sock)
        rig.iop.disk_kick = lambda s: rig.disk.wakeup.set()
        rig.disk.add_record(stream)

        def source():
            for i in range(25):
                yield from rig.client_sock.send(("msu", 4500), b"m" * 800)
                yield sim.timeout(0.02)

        sim.process(source())
        sim.run(until=3.0)
        assert stream.packets_received == 25
        stream.begin_finish()
        rig.disk.wakeup.set()
        sim.run(until=6.0)
        assert handle.nblocks >= 1
