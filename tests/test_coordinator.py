"""Coordinator behaviour over real control channels (no MSU data path)."""

import pytest

from repro.clients.fake_msu import FakeMsu
from repro.core.coordinator import Coordinator
from repro.core.database import ContentEntry
from repro.net import ControlChannel
from repro.net import messages as m
from repro.sim import Simulator
from tests.conftest import run_process


class _World:
    """Coordinator + one fake MSU + one scripted client channel."""

    def __init__(self, sim, n_msus=1):
        self.sim = sim
        self.coordinator = Coordinator(sim)
        self.coordinator.db.add_customer("user")
        self.coordinator.db.add_customer("root", admin=True)
        self.fakes = []
        for i in range(n_msus):
            fake = FakeMsu(sim, f"fake{i}")
            chan = ControlChannel(sim, self.coordinator.name, fake.name, latency=0.001)
            self.coordinator.attach_msu(chan)
            fake.attach_coordinator(chan)
            self.fakes.append(fake)
        sim.run(until=0.01)
        self.channel = ControlChannel(sim, "cli", self.coordinator.name, latency=0.001)
        self.coordinator.connect_client(self.channel, "cli")

    def rpc(self, msg):
        def call():
            self.channel.send("cli", msg)
            reply = yield self.channel.recv("cli")
            return reply

        return run_process(self.sim, call(), limit=self.sim.now + 10)

    def add_clip(self, name="clip", msu="fake0", disk="fake0.sd0"):
        self.coordinator.db.add_content(ContentEntry(name, "mpeg1", msu, disk))


class TestSessions:
    def test_open_session(self, sim):
        world = _World(sim)
        reply = world.rpc(m.OpenSession("user"))
        assert isinstance(reply, m.SessionOpened)

    def test_unknown_customer_rejected(self, sim):
        world = _World(sim)
        reply = world.rpc(m.OpenSession("stranger"))
        assert isinstance(reply, m.RequestFailed)

    def test_listing(self, sim):
        world = _World(sim)
        world.add_clip("alpha")
        world.add_clip("beta")
        sid = world.rpc(m.OpenSession("user")).session_id
        reply = world.rpc(m.ListContents(sid))
        assert reply.items == (("alpha", "mpeg1"), ("beta", "mpeg1"))

    def test_close_session_drops_ports(self, sim):
        world = _World(sim)
        sid = world.rpc(m.OpenSession("user")).session_id
        world.rpc(m.RegisterPort(sid, "p", "mpeg1", ("cli", 6000)))
        world.channel.send("cli", m.CloseSession(sid))
        sim.run(until=sim.now + 0.1)
        assert len(world.coordinator.sessions) == 0


class TestPorts:
    def test_register_port(self, sim):
        world = _World(sim)
        sid = world.rpc(m.OpenSession("user")).session_id
        reply = world.rpc(m.RegisterPort(sid, "tv", "mpeg1", ("cli", 6000)))
        assert isinstance(reply, m.PortRegistered)

    def test_register_port_unknown_type(self, sim):
        world = _World(sim)
        sid = world.rpc(m.OpenSession("user")).session_id
        reply = world.rpc(m.RegisterPort(sid, "tv", "divx", ("cli", 6000)))
        assert isinstance(reply, m.RequestFailed)

    def test_composite_port_needs_matching_components(self, sim):
        world = _World(sim)
        sid = world.rpc(m.OpenSession("user")).session_id
        world.rpc(m.RegisterPort(sid, "v", "rtp-video", ("cli", 6000)))
        reply = world.rpc(m.RegisterCompositePort(sid, "sem", "seminar", ("v",)))
        assert isinstance(reply, m.RequestFailed)  # missing audio port
        world.rpc(m.RegisterPort(sid, "a", "vat-audio", ("cli", 6001)))
        reply = world.rpc(m.RegisterCompositePort(sid, "sem", "seminar", ("v", "a")))
        assert isinstance(reply, m.PortRegistered)

    def test_composite_port_of_atomic_type_rejected(self, sim):
        world = _World(sim)
        sid = world.rpc(m.OpenSession("user")).session_id
        reply = world.rpc(m.RegisterCompositePort(sid, "x", "mpeg1", ()))
        assert isinstance(reply, m.RequestFailed)


class TestPlay:
    def _session_with_port(self, world):
        sid = world.rpc(m.OpenSession("user")).session_id
        world.rpc(m.RegisterPort(sid, "tv", "mpeg1", ("cli", 6000)))
        return sid

    def test_play_schedules_on_msu(self, sim):
        world = _World(sim)
        world.add_clip()
        sid = self._session_with_port(world)
        reply = world.rpc(m.PlayRequest(sid, "clip", "tv"))
        assert isinstance(reply, m.StreamScheduled)
        assert reply.msu_name == "fake0"

    def test_type_mismatch_rejected(self, sim):
        world = _World(sim)
        world.coordinator.db.add_content(
            ContentEntry("talk", "rtp-video", "fake0", "fake0.sd0")
        )
        sid = self._session_with_port(world)
        reply = world.rpc(m.PlayRequest(sid, "talk", "tv"))
        assert isinstance(reply, m.RequestFailed)

    def test_unknown_content_rejected(self, sim):
        world = _World(sim)
        sid = self._session_with_port(world)
        reply = world.rpc(m.PlayRequest(sid, "ghost", "tv"))
        assert isinstance(reply, m.RequestFailed)

    def test_resources_released_on_termination(self, sim):
        world = _World(sim)
        world.add_clip()
        sid = self._session_with_port(world)
        world.rpc(m.PlayRequest(sid, "clip", "tv"))
        sim.run(until=sim.now + 0.5)  # fake MSU terminates after 50 ms
        state = world.coordinator.db.msus["fake0"]
        assert state.delivery_used == 0.0
        assert not world.coordinator.groups

    def test_oversubscription_queues_until_release(self, sim):
        world = _World(sim)
        world.add_clip()
        sid = self._session_with_port(world)
        state = world.coordinator.db.msus["fake0"]
        state.delivery_capacity = 200_000.0  # one stream at a time
        for disk in state.disks.values():
            disk.bandwidth_capacity = 200_000.0
        world.channel.send("cli", m.PlayRequest(sid, "clip", "tv"))
        world.channel.send("cli", m.PlayRequest(sid, "clip", "tv"))
        sim.run(until=sim.now + 0.02)
        assert len(world.coordinator.admission.queue) == 1
        sim.run(until=sim.now + 1.0)  # first terminates -> retry fires
        assert len(world.coordinator.admission.queue) == 0
        assert world.fakes[0].streams_handled == 2


class TestRecord:
    def test_record_reserves_and_registers(self, sim):
        world = _World(sim)
        sid = world.rpc(m.OpenSession("user")).session_id
        world.rpc(m.RegisterPort(sid, "cam", "mpeg1", ("cli", 6000)))
        reply = world.rpc(m.RecordRequest(sid, "home-video", "mpeg1", "cam", 30.0))
        assert isinstance(reply, m.StreamScheduled)
        assert "home-video" in world.coordinator.db.contents

    def test_duplicate_content_name_rejected(self, sim):
        world = _World(sim)
        world.add_clip("clip")
        sid = world.rpc(m.OpenSession("user")).session_id
        world.rpc(m.RegisterPort(sid, "cam", "mpeg1", ("cli", 6000)))
        reply = world.rpc(m.RecordRequest(sid, "clip", "mpeg1", "cam", 30.0))
        assert isinstance(reply, m.RequestFailed)

    def test_composite_record_pins_one_msu(self, sim):
        world = _World(sim, n_msus=3)
        sid = world.rpc(m.OpenSession("user")).session_id
        world.rpc(m.RegisterPort(sid, "v", "rtp-video", ("cli", 6000)))
        world.rpc(m.RegisterPort(sid, "a", "vat-audio", ("cli", 6001)))
        world.rpc(m.RegisterCompositePort(sid, "sem", "seminar", ("v", "a")))
        reply = world.rpc(m.RecordRequest(sid, "talk", "seminar", "sem", 30.0))
        assert isinstance(reply, m.StreamScheduled)
        video = world.coordinator.db.content("talk.rtp-video")
        audio = world.coordinator.db.content("talk.vat-audio")
        assert video.msu_name == audio.msu_name == reply.msu_name
        composite = world.coordinator.db.content("talk")
        assert set(composite.components) == {"talk.rtp-video", "talk.vat-audio"}


class TestFailureHandling:
    def test_msu_failure_marks_unavailable(self, sim):
        world = _World(sim)
        world.add_clip()
        world.fakes[0].channel.close()
        sim.run(until=sim.now + 0.1)
        assert not world.coordinator.db.msus["fake0"].available

    def test_failed_msu_rejects_requests(self, sim):
        world = _World(sim)
        world.add_clip()
        sid = world.rpc(m.OpenSession("user")).session_id
        world.rpc(m.RegisterPort(sid, "tv", "mpeg1", ("cli", 6000)))
        world.fakes[0].channel.close()
        sim.run(until=sim.now + 0.1)
        world.channel.send("cli", m.PlayRequest(sid, "clip", "tv"))
        sim.run(until=sim.now + 0.1)
        assert len(world.coordinator.admission.queue) == 1  # parked

    def test_msu_rejoin_restores_scheduling(self, sim):
        """§2.2: "When the MSU becomes available again, it contacts the
        Coordinator and is restored to the scheduling database"."""
        world = _World(sim)
        world.add_clip()
        world.fakes[0].channel.close()
        sim.run(until=sim.now + 0.1)
        rejoined = FakeMsu(sim, "fake0")
        chan = ControlChannel(sim, world.coordinator.name, "fake0", latency=0.001)
        world.coordinator.attach_msu(chan)
        rejoined.attach_coordinator(chan)
        sim.run(until=sim.now + 0.1)
        assert world.coordinator.db.msus["fake0"].available


class TestDelete:
    def test_delete_requires_admin(self, sim):
        world = _World(sim)
        world.add_clip()
        sid = world.rpc(m.OpenSession("user")).session_id
        reply = world.rpc(m.DeleteContent(sid, "clip"))
        assert isinstance(reply, m.RequestFailed)
        assert "clip" in world.coordinator.db.contents

    def test_admin_delete_removes_content(self, sim):
        world = _World(sim)
        world.add_clip()
        sid = world.rpc(m.OpenSession("root")).session_id
        reply = world.rpc(m.DeleteContent(sid, "clip"))
        assert isinstance(reply, m.Deleted)
        assert "clip" not in world.coordinator.db.contents


class TestCpuAccounting:
    def test_requests_consume_coordinator_cpu(self, sim):
        world = _World(sim)
        world.add_clip()
        sid = world.rpc(m.OpenSession("user")).session_id
        world.rpc(m.RegisterPort(sid, "tv", "mpeg1", ("cli", 6000)))
        before = world.coordinator.machine.cpu.busy_time
        world.rpc(m.PlayRequest(sid, "clip", "tv"))
        after = world.coordinator.machine.cpu.busy_time
        assert after - before >= Coordinator.REQUEST_CPU
