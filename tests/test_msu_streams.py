"""PlayStream / RecordStream state machines."""

import pytest

from repro.core.msu.streams import (
    LoadedPage,
    PlayStream,
    RecordStream,
    StreamState,
)
from repro.net.protocols import RawProtocol, RtpProtocol
from repro.net.rtp import RtpHeader
from repro.sim import Simulator
from repro.storage import IBTreeConfig, MsuFileSystem, PacketRecord, RawDisk, SpanVolume

CONFIG = IBTreeConfig(data_page_size=2048, internal_page_size=256, max_keys=8)


def make_play(sim):
    fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 64), 2048))
    handle = fs.create("movie", "mpeg1")
    handle.duration_us = 1_000_000
    handle.blocks = [2, 3, 4]  # pretend three pages exist
    return PlayStream(1, 1, handle, RawProtocol(), 187_500.0, ("client", 5000), CONFIG)


def records(*times):
    return [PacketRecord(t, b"p") for t in times]


class TestBuffers:
    def test_wants_two_buffers(self, sim):
        stream = make_play(sim)
        assert stream.wants_page()
        stream.attach_page(stream.epoch, 0, records(0, 10))
        assert stream.wants_page()
        stream.attach_page(stream.epoch, 1, records(20, 30))
        assert not stream.wants_page()
        assert stream.double_buffered

    def test_front_pops_exhausted_pages(self, sim):
        stream = make_play(sim)
        stream.attach_page(stream.epoch, 0, records(0))
        stream.attach_page(stream.epoch, 1, records(10))
        page = stream.front()
        page.advance()
        nxt = stream.front()
        assert nxt is not page
        assert nxt.records[0].delivery_us == 10
        assert stream.refill_wanted

    def test_stale_epoch_pages_dropped(self, sim):
        stream = make_play(sim)
        old_epoch = stream.epoch
        stream.flush_buffers()
        stream.attach_page(old_epoch, 0, records(0))
        assert stream.front() is None

    def test_skip_on_page_positions_mid_page(self, sim):
        stream = make_play(sim)
        stream.skip_on_page = (0, 2)
        stream.attach_page(stream.epoch, 0, records(0, 10, 20, 30))
        assert stream.peek_record().delivery_us == 20
        assert stream.skip_on_page is None

    def test_at_end(self, sim):
        stream = make_play(sim)
        stream.next_page = 3
        assert stream.at_end


class TestScheduleControl:
    def test_start_anchors_first_record_now(self, sim):
        stream = make_play(sim)
        stream.attach_page(stream.epoch, 0, records(100_000))
        sim.run(until=5.0)
        stream.start(sim.now, 100_000)
        assert stream.state is StreamState.PLAYING
        assert stream.deadline(stream.peek_record()) == pytest.approx(5.0)

    def test_pause_resume_shifts_anchor(self, sim):
        stream = make_play(sim)
        stream.attach_page(stream.epoch, 0, records(0, 500_000))
        stream.start(0.0, 0)
        stream.pause(1.0)
        assert stream.state is StreamState.PAUSED
        stream.resume(4.0)
        # 3 seconds of pause push every deadline 3 seconds later.
        assert stream.deadline(PacketRecord(500_000, b"")) == pytest.approx(3.5)

    def test_resume_without_pause_is_safe(self, sim):
        stream = make_play(sim)
        stream.attach_page(stream.epoch, 0, records(0))
        stream.start(0.0, 0)
        stream.resume(9.0)
        assert stream.state is StreamState.PLAYING

    def test_deadline_before_start_rejected(self, sim):
        stream = make_play(sim)
        with pytest.raises(RuntimeError):
            stream.deadline(PacketRecord(0, b""))

    def test_flush_bumps_epoch(self, sim):
        stream = make_play(sim)
        epoch = stream.epoch
        stream.flush_buffers()
        assert stream.epoch == epoch + 1


class TestRecordStream:
    def _make(self, protocol=None):
        fs = MsuFileSystem(SpanVolume(RawDisk(None, capacity=2048 * 64), 2048))
        handle = fs.create("rec", "")
        return RecordStream(1, 1, handle, protocol or RawProtocol(), CONFIG)

    def test_accept_assigns_arrival_relative_times(self, sim):
        stream = self._make()
        stream.accept(b"a" * 100, now=10.0)
        stream.accept(b"b" * 100, now=10.5)
        assert stream.packets_received == 2
        assert stream.last_delivery_us == 500_000

    def test_full_page_lands_in_pending(self, sim):
        stream = self._make()
        for i in range(30):
            stream.accept(b"x" * 150, now=float(i))
        assert len(stream.pending_pages) >= 1

    def test_rtp_timestamps_drive_schedule(self, sim):
        stream = self._make(RtpProtocol())
        first = RtpHeader(26, 0, 0, 1).pack() + b"v"
        second = RtpHeader(26, 1, 45_000, 1).pack() + b"v"
        stream.accept(first, now=0.0)
        stream.accept(second, now=0.9)  # jittered arrival
        assert stream.last_delivery_us == 500_000  # clean media clock

    def test_begin_finish_emits_trailer(self, sim):
        stream = self._make()
        stream.accept(b"x" * 50, now=0.0)
        stream.begin_finish()
        assert stream.finishing
        assert len(stream.pending_pages) >= 1
        stream.pending_pages.clear()
        assert stream.drained

    def test_begin_finish_idempotent(self, sim):
        stream = self._make()
        stream.accept(b"x" * 50, now=0.0)
        stream.begin_finish()
        pages = len(stream.pending_pages)
        stream.begin_finish()
        assert len(stream.pending_pages) == pages

    def test_non_monotonic_protocol_times_clamped(self, sim):
        stream = self._make()
        stream.accept(b"a", now=1.0)
        stream.accept(b"b", now=2.0)
        # Arrival goes backwards relative to start (clock skew): clamp.
        stream.context["first_arrival_us"] = 10**9
        stream.accept(b"c", now=2.5)
        assert stream.last_delivery_us == 1_000_000
