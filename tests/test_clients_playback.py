"""Client playout-buffer model (§2.2.1's jitter-smoothing argument)."""

import pytest

from repro.clients import PlayoutBuffer


def steady_arrivals(rate, packet, duration, jitter_fn=lambda i: 0.0):
    """Packets of ``packet`` bytes at the nominal rate with jitter."""
    interval = packet / rate
    n = int(duration / interval)
    return [(i * interval + jitter_fn(i), packet) for i in range(n)]


class TestPlayout:
    def test_smooth_stream_never_underflows(self):
        buffer = PlayoutBuffer(capacity_bytes=200_000, rate=187_500, startup_delay=1.0)
        report = buffer.evaluate(steady_arrivals(187_500, 4096, 30.0))
        assert report.underflows == 0
        assert report.overflow_bytes == 0

    def test_paper_buffer_holds_over_a_second(self):
        """"A 200 KByte buffer will hold more than one second of
        1.5 Mbit/sec video."""
        assert 200_000 / 187_500 > 1.0

    def test_msu_worst_case_jitter_smoothed(self):
        """150 ms of server jitter (§2.2.1 worst case) rides easily on a
        one-second startup delay."""
        import numpy as np

        rng = np.random.default_rng(1)
        buffer = PlayoutBuffer(capacity_bytes=200_000, rate=187_500, startup_delay=1.0)
        report = buffer.evaluate(
            steady_arrivals(187_500, 4096, 30.0, lambda i: float(rng.uniform(0, 0.15)))
        )
        assert report.underflows == 0

    def test_second_long_stall_underflows_small_delay(self):
        arrivals = steady_arrivals(187_500, 4096, 10.0)
        # A 1.5-second gap mid-stream with only 0.5 s of startup buffering.
        stalled = [
            (t + 1.5 if t > 5.0 else t, n) for t, n in arrivals
        ]
        buffer = PlayoutBuffer(capacity_bytes=200_000, rate=187_500, startup_delay=0.5)
        report = buffer.evaluate(stalled)
        assert report.underflows >= 1
        assert report.stall_seconds > 0

    def test_overflow_counted_when_buffer_tiny(self):
        buffer = PlayoutBuffer(capacity_bytes=8_192, rate=187_500, startup_delay=2.0)
        report = buffer.evaluate(steady_arrivals(187_500, 4096, 10.0))
        assert report.overflow_bytes > 0

    def test_empty_arrivals(self):
        report = PlayoutBuffer().evaluate([])
        assert report.underflows == 0

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            PlayoutBuffer(capacity_bytes=0)
        with pytest.raises(ValueError):
            PlayoutBuffer(rate=-1)
