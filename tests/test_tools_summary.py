"""The one-shot markdown report generator."""

import pytest

from repro.tools.cli import EXPERIMENTS
from repro.tools.summary import generate, main


class TestGenerate:
    def test_subset_report_contains_sections(self):
        report = generate(duration=5.0, names=["memorypath"])
        assert "# Calliope reproduction report" in report
        assert "## memorypath" in report
        assert "7.50" in report

    def test_all_names_known(self):
        # Names the summary iterates are exactly the CLI registry.
        report_names = sorted(EXPERIMENTS)
        assert "table1" in report_names and "graph1" in report_names


class TestMain:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["--out", str(out), "--only", "memorypath",
                     "--duration", "5"]) == 0
        text = out.read_text()
        assert "## memorypath" in text

    def test_stdout_default(self, capsys):
        assert main(["--only", "elevator", "--duration", "10"]) == 0
        assert "elevator" in capsys.readouterr().out
