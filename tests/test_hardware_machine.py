"""Machine assembly, CPU stall model, memory bus, NIC and timer."""

import pytest

from repro.hardware import Machine, MachineParams, MemoryBus
from repro.hardware.params import ETHERNET_10, FDDI, MemoryParams, TimerParams
from repro.hardware.timer import SystemTimer
from repro.sim import Simulator
from repro.units import CBR_PACKET_SIZE, to_mbyte_per_s
from tests.conftest import run_process


class TestMachine:
    def test_topology_construction(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(2, 1)))
        assert len(machine.hbas) == 2
        assert len(machine.disks) == 3
        assert len(machine.disks_on(machine.hbas[0])) == 2
        assert len(machine.disks_on(machine.hbas[1])) == 1

    def test_diskless_machine(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        assert machine.disks == [] and machine.hbas == []
        assert machine.outstanding_commands() == 0

    def test_nic_registry(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        nic = machine.add_nic(FDDI)
        assert machine.nic("fddi0") is nic
        with pytest.raises(ValueError):
            machine.add_nic(FDDI)

    def test_outstanding_commands_tracked(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        hba = machine.hbas[0]
        assert machine.active_hba_count() == 0
        hba.command_begin()
        assert machine.active_hba_count() == 1
        assert machine.outstanding_commands() == 1
        hba.command_end()
        assert machine.outstanding_commands() == 0

    def test_command_end_without_begin_rejected(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)))
        with pytest.raises(RuntimeError):
            machine.hbas[0].command_end()


class TestCpuStall:
    def test_no_stall_below_threshold(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(2,)))
        machine.hbas[0].command_begin()
        machine.hbas[0].command_begin()
        assert machine.cpu.io_stall_time() == 0.0  # one HBA only

    def test_stall_with_two_active_hbas(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(1, 1)))
        for hba in machine.hbas:
            hba.command_begin()
        stall = machine.cpu.io_stall_time()
        assert stall == pytest.approx(machine.params.cpu.io_stall_base)

    def test_stall_grows_with_commands(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=(2, 1)))
        machine.hbas[0].command_begin()
        machine.hbas[0].command_begin()
        machine.hbas[1].command_begin()
        stall = machine.cpu.io_stall_time()
        p = machine.params.cpu
        assert stall == pytest.approx(p.io_stall_base + p.io_stall_per_command)

    def test_cpu_execute_accounts_busy_time(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        run_process(sim, machine.cpu.execute(0.25))
        assert machine.cpu.busy_time == pytest.approx(0.25)
        assert machine.cpu.utilization(1.0) == pytest.approx(0.25)

    def test_cpu_serializes(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))

        def worker():
            yield from machine.cpu.execute(1.0)
            return sim.now

        p1 = sim.process(worker())
        p2 = sim.process(worker())
        sim.run()
        assert (p1.value, p2.value) == (1.0, 2.0)


class TestMemoryBus:
    def test_transfer_time_matches_rate(self, sim):
        bus = MemoryBus(sim)
        run_process(sim, bus.copy(18_000_000))
        assert sim.now == pytest.approx(1.0)

    def test_rates_differ_by_kind(self, sim):
        params = MemoryParams()
        for kind, rate in [("read", 53e6), ("write", 25e6), ("copy", 18e6)]:
            s = Simulator()
            bus = MemoryBus(s, params)
            run_process(s, getattr(bus, kind)(1_000_000))
            assert s.now == pytest.approx(1_000_000 / rate)

    def test_concurrent_transfers_share_bandwidth(self, sim):
        bus = MemoryBus(sim)

        def mover():
            yield from bus.copy(9_000_000)
            return sim.now

        p1 = sim.process(mover())
        p2 = sim.process(mover())
        sim.run()
        # Two 0.5 s transfers interleaved chunk-wise: both finish ~1 s.
        assert p1.value == pytest.approx(1.0, rel=0.01)
        assert p2.value == pytest.approx(1.0, rel=0.01)

    def test_negative_size_rejected(self, sim):
        bus = MemoryBus(sim)
        with pytest.raises(ValueError):
            list(bus.read(-1))

    def test_accounting(self, sim):
        bus = MemoryBus(sim)
        run_process(sim, bus.read(1024))
        assert bus.bytes_moved == 1024
        assert bus.busy_time > 0


class TestNic:
    def test_fddi_alone_reaches_8_5(self, sim):
        """The FDDI-only baseline: 8.5 MB/s with 4 KiB UDP (Table 1)."""
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        nic = machine.add_nic(FDDI)

        def sender():
            while True:
                yield from nic.udp_send(CBR_PACKET_SIZE)

        sim.process(sender())
        sim.run(until=10.0)
        assert to_mbyte_per_s(nic.throughput(10.0)) == pytest.approx(8.5, abs=0.2)

    def test_ethernet_line_rate_bounds_throughput(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        nic = machine.add_nic(ETHERNET_10)

        def sender():
            while True:
                yield from nic.udp_send(CBR_PACKET_SIZE)

        sim.process(sender())
        sim.run(until=5.0)
        assert nic.throughput(5.0) <= ETHERNET_10.line_rate

    def test_enobufs_backoff_counted(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        nic = machine.add_nic(ETHERNET_10)  # slow line: queue fills

        def sender():
            for _ in range(200):
                yield from nic.udp_send(CBR_PACKET_SIZE)

        run_process(sim, sender())
        assert nic.enobufs_count > 0

    def test_receive_path_counts(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        nic = machine.add_nic(FDDI)
        run_process(sim, nic.udp_receive(1024))
        assert nic.packets_received == 1
        assert nic.bytes_received == 1024

    def test_on_transmit_callback(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        nic = machine.add_nic(FDDI)
        seen = []
        nic.on_transmit = lambda payload, n: seen.append((payload, n))
        run_process(sim, nic.udp_send(512, payload="tag"))
        sim.run()
        assert seen == [("tag", 512)]

    def test_bad_packet_sizes_rejected(self, sim):
        machine = Machine(sim, MachineParams(disks_per_hba=()))
        nic = machine.add_nic(FDDI)
        with pytest.raises(ValueError):
            list(nic.udp_send(0))
        with pytest.raises(ValueError):
            list(nic.udp_receive(-5))


class TestTimer:
    def test_quantizes_to_granularity(self, sim):
        timer = SystemTimer(sim, TimerParams(granularity=0.010))
        assert timer.next_tick_at_or_after(0.0123) == pytest.approx(0.020)
        assert timer.next_tick_at_or_after(0.020) == pytest.approx(0.020)

    def test_zero_granularity_is_precise(self, sim):
        timer = SystemTimer(sim, TimerParams(granularity=0.0))
        assert timer.next_tick_at_or_after(0.0123) == 0.0123

    def test_wait_until_advances_to_tick(self, sim):
        timer = SystemTimer(sim, TimerParams(granularity=0.010))

        def proc():
            yield from timer.wait_until(0.014)
            return sim.now

        assert run_process(sim, proc()) == pytest.approx(0.020)

    def test_wait_until_past_is_noop(self, sim):
        timer = SystemTimer(sim, TimerParams(granularity=0.010))
        sim.run(until=1.0)

        def proc():
            yield from timer.wait_until(0.5)
            return sim.now

        assert run_process(sim, proc()) == 1.0

    def test_sleep_negative_rejected(self, sim):
        timer = SystemTimer(sim)
        with pytest.raises(ValueError):
            timer.sleep(-1.0)
