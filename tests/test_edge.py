"""Edge proxy tier: placement loop, zero-disk-cost lane, crash, failover.

The multicast tests already exercise edge-covered patches; everything
here runs with ``multicast=None`` so plays take the plain unicast path
in ``Coordinator._play`` — the only route to the *prefix* serve lane
(an edged multicast play is intercepted by the channel manager first).
"""

import pytest

from repro.core import CalliopeCluster, ClusterConfig
from repro.core.replication import ReplicationManager
from repro.edge import EdgeConfig
from repro.failover import FailoverConfig
from repro.sim import Simulator

from tests.helpers import FAST, SMALL, make_packets, open_client, start_stream

#: Fast enough for test horizons: one play pins the title on the next
#: placement tick (score 1.0 decays to 0.9, above promote at 0.5) and
#: the 48-page fill trickle completes in ~0.1 s.
EDGE = EdgeConfig(
    n_edges=1, prefix_pages=48, placement_period=0.25,
    decay=0.9, promote_score=0.5, evict_score=0.05, report_period=0.25,
)


def build_edged(*, n_msus=1, edge=EDGE, failover=None, length=30.0, seed=3):
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=n_msus, ibtree_config=SMALL, failover=failover,
            multicast=None, edge=edge,
        ),
    )
    cluster.coordinator.db.add_customer("user")
    return sim, cluster, make_packets(length, seed=seed)


class TestEdgeConfig:
    def test_decay_must_stay_below_one(self):
        with pytest.raises(ValueError):
            EdgeConfig(decay=1.0)

    def test_evict_must_stay_below_promote(self):
        with pytest.raises(ValueError):
            EdgeConfig(promote_score=1.0, evict_score=1.0)


class TestPlacementLoop:
    def test_popular_title_is_pinned_then_evicted_when_cold(self):
        sim, cluster, packets = build_edged(
            edge=EdgeConfig(
                n_edges=1, prefix_pages=48, placement_period=0.25,
                decay=0.7, promote_score=0.5, evict_score=0.3,
                report_period=0.25,
            ),
        )
        cluster.load_content("movie", "mpeg1", packets)
        sim.run(until=0.05)
        placement = cluster.coordinator.placement
        proxy = cluster.edges[0]
        placement.note_request("movie")
        # Score 1.0 decays to 0.7 at the first tick — pinned and filled.
        sim.run(until=0.8)
        assert placement.edges[proxy.name].pinned.get("movie", 0) == 48
        assert proxy.pinned_titles() == {"movie": 48}
        assert proxy.pool.used == 48 * EDGE.page_size
        # No further requests: 0.7 -> 0.49 -> 0.343 -> 0.24 <= evict.
        sim.run(until=3.0)
        assert "movie" not in placement.edges[proxy.name].pinned
        assert proxy.pinned_titles() == {}
        assert proxy.pool.used == 0

    def test_hot_titles_sorted_by_decayed_score(self):
        sim, cluster, _ = build_edged()
        placement = cluster.coordinator.placement
        placement.note_request("a")
        placement.note_request("b")
        placement.note_request("b")
        assert placement.hot_titles()[0] == ("b", 2.0)
        placement.decay()
        assert placement.scores["b"] == pytest.approx(1.8)


class TestPrefixServeUnicast:
    def test_second_play_splices_from_the_edge(self):
        sim, cluster, packets = build_edged()
        coord = cluster.coordinator
        placement = coord.placement
        proxy = cluster.edges[0]
        cluster.load_content("movie", "mpeg1", packets)
        sim.run(until=0.05)
        client = open_client(sim, cluster)
        # First play: nothing pinned yet — a plan miss, served MSU-only.
        start_stream(sim, client, "movie", "cold")
        assert placement.prefix_serves == 0
        assert coord.admission.edge_admitted == 0
        # The placement loop pins the now-hot title.
        sim.run(until=sim.now + 1.0)
        assert proxy.pinned_titles() == {"movie": 48}
        view = start_stream(sim, client, "movie", "tv")
        assert placement.prefix_serves == 1
        assert coord.admission.edge_admitted == 1
        # The serve is live: charged against the edge uplink, and the
        # group's books hold only MSU-lane allocations.
        assert placement.edges[proxy.name].uplink_used > 0.0
        assert proxy.uplink_used > 0.0
        group = coord.groups[view.group_id]
        assert all(not a.edge_name for a in group.allocations.values())
        # 48 pages at the MPEG-1 rate take ~4 s; let the serve finish.
        sim.run(until=sim.now + 6.0)
        assert proxy.prefix_bytes_served == 48 * EDGE.page_size
        assert proxy.hits >= 1
        assert placement.serves == {}
        assert placement.edges[proxy.name].uplink_used == pytest.approx(0.0)

    def test_edge_crash_mid_serve_does_not_stall_the_stream(self):
        sim, cluster, packets = build_edged()
        coord = cluster.coordinator
        placement = coord.placement
        cluster.load_content("movie", "mpeg1", packets)
        sim.run(until=0.05)
        client = open_client(sim, cluster)
        start_stream(sim, client, "movie", "cold")
        sim.run(until=sim.now + 1.0)
        view = start_stream(sim, client, "movie", "tv")
        assert placement.prefix_serves == 1
        cluster.fail_edge(0)
        sim.run(until=sim.now + 1.0)
        # The broken control channel told the Coordinator: the serve is
        # refunded, no uplink charge lingers, the pins are gone.
        assert placement.serves == {}
        assert all(
            v.uplink_used == pytest.approx(0.0)
            for v in placement.edges.values()
        )
        assert cluster.edges[0].pinned_titles() == {}
        # The MSU tail stream never depended on the edge: data still flows.
        frozen = client.ports["tv"].stats.packets
        sim.run(until=sim.now + 2.0)
        assert client.ports["tv"].stats.packets > frozen
        assert not view.done_event.triggered


class TestFailoverMissPath:
    def test_backing_msu_death_migrates_without_losing_edge_position(self):
        """The satellite case: a client spliced onto an edge prefix whose
        backing MSU dies mid-stream migrates to the replica via the
        migrator while the edge keeps serving its prefix leg — the
        stream is charged once per leg, never twice."""
        sim, cluster, packets = build_edged(
            n_msus=2, failover=FailoverConfig(heartbeat=FAST),
        )
        coord = cluster.coordinator
        placement = coord.placement
        proxy = cluster.edges[0]
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        sim.run(until=0.05)
        client = open_client(sim, cluster)
        warm = start_stream(sim, client, "movie", "warm")
        sim.run(until=sim.now + 1.0)
        assert proxy.pinned_titles() == {"movie": 48}
        view = start_stream(sim, client, "movie", "tv")
        assert coord.groups[view.group_id].msu_name == "msu0"
        serve_key = next(iter(placement.serves))
        assert serve_key[0] == view.group_id
        served_before = proxy.prefix_bytes_served
        # The replica appears only now, so both streams started on msu0
        # and the migrator has somewhere to move them.
        replica_disk = cluster.msus[1].disk_ids()[0]
        ReplicationManager(cluster).replicate("movie", "msu1", replica_disk)

        cluster.hang_msu(0)
        sim.run(until=sim.now + FAST.detection_latency + 1.5)
        # Both groups moved to the replica without a fresh PlayRequest.
        assert coord.groups[view.group_id].msu_name == "msu1"
        assert view.migrations == 1
        assert warm.migrations == 1
        # The edge leg never noticed: the serve record survived the
        # migration under its original ids (the 48-page serve outlives
        # the ~0.8 s detection + resume window) and keeps streaming.
        assert serve_key in placement.serves
        assert placement.serves[serve_key].edge_name == proxy.name
        frozen = client.ports["tv"].stats.packets
        sim.run(until=sim.now + 6.0)
        assert client.ports["tv"].stats.packets > frozen
        # The serve ran to completion from edge memory ...
        assert proxy.prefix_bytes_served >= served_before + 48 * EDGE.page_size
        assert placement.serves == {}
        # ... and nothing is double-charged once the dust settles: the
        # uplink refunded, and the migrated group's books are MSU-lane
        # only (one place_read charge per leg).
        assert placement.edges[proxy.name].uplink_used == pytest.approx(0.0)
        group = coord.groups[view.group_id]
        assert all(not a.edge_name for a in group.allocations.values())
        assert all(a.msu_name == "msu1" for a in group.allocations.values())


class TestEdgeSplice:
    """The no-channel-slot fall-through: edge prefix + unicast tail."""

    def _edged_mcast(self):
        from repro.cache.manager import CacheConfig
        from repro.multicast import MulticastConfig

        sim = Simulator()
        cluster = CalliopeCluster(
            sim,
            ClusterConfig(
                n_msus=1, ibtree_config=SMALL,
                multicast=MulticastConfig(batch_window=0.2, patch_horizon=2.0),
                edge=EDGE, cache=CacheConfig(),
            ),
        )
        cluster.coordinator.db.add_customer("user")
        cluster.load_content("movie", "mpeg1", make_packets(30.0))
        return sim, cluster

    def test_splice_serves_play_when_no_channel_slot(self):
        sim, cluster = self._edged_mcast()
        coord = cluster.coordinator
        placement = coord.placement
        proxy = cluster.edges[0]
        placement.note_request("movie")
        sim.run(until=1.0)
        assert placement.edges[proxy.name].pinned.get("movie", 0) > 0

        # A leader channel holds the title active on its home disk.
        leader = open_client(sim, cluster, name="a")
        start_stream(sim, leader, "movie", "tv")
        mcast = coord.channel_manager
        assert len(mcast.channels) == 1

        # Exhaust the disk's raw bandwidth: no new channel is placeable,
        # but the cache-covered unicast second chance still is.
        entry = coord.db.contents["movie"]
        ctype = coord.types.get("mpeg1")
        while coord.admission.place_channel(entry, ctype) is not None:
            pass

        # Past the prefix-stretched patch horizon nothing is joinable
        # either, so without the splice this viewer would be parked.
        sim.run(until=8.0)
        viewer = open_client(sim, cluster, name="b")
        view = start_stream(sim, viewer, "movie", "tv")
        assert view.ready_streams
        assert mcast.edge_spliced == 1
        assert mcast.fallbacks == 0
        assert placement.prefix_serves == 1
        assert coord.admission.cache_admitted >= 1
        # The tail rides the cache; the opening pages come off the edge.
        group = coord.groups[view.group_id]
        tail = [a for a in group.allocations.values() if not a.edge_name]
        assert len(tail) == 1 and tail[0].cache_covered
        before = viewer.ports["tv"].stats.packets
        sim.run(until=sim.now + 3.0)
        assert viewer.ports["tv"].stats.packets > before

    def test_splice_unavailable_without_prefix_parks_request(self):
        sim, cluster = self._edged_mcast()
        coord = cluster.coordinator
        leader = open_client(sim, cluster, name="a")
        start_stream(sim, leader, "movie", "tv")
        entry = coord.db.contents["movie"]
        ctype = coord.types.get("mpeg1")
        while coord.admission.place_channel(entry, ctype) is not None:
            pass
        sim.run(until=8.0)  # nothing pinned: plan_prefix misses
        viewer = open_client(sim, cluster, name="b")
        proc = sim.process(
            _play_only(sim, viewer, "movie", "tv")
        )
        sim.run(until=sim.now + 2.0)
        mcast = coord.channel_manager
        assert mcast.edge_spliced == 0
        assert mcast.fallbacks == 1
        assert proc.is_alive  # parked on the queue, still waiting


def _play_only(sim, client, title, port):
    yield from client.register_port(port, "mpeg1")
    yield from client.play(title, port)


class TestIntervalWindowSeeding:
    """begin_serve seeds a rideable window when its span is resident."""

    def _pinned(self):
        sim, cluster, packets = build_edged()
        cluster.load_content("movie", "mpeg1", packets)
        coord = cluster.coordinator
        placement = coord.placement
        placement.note_request("movie")
        sim.run(until=1.0)
        proxy = cluster.edges[0]
        assert placement.edges[proxy.name].pinned.get("movie", 0) == 48
        return sim, cluster, coord, placement, proxy

    def test_resident_span_seeds_window_at_begin_serve(self):
        sim, cluster, coord, placement, proxy = self._pinned()
        entry = coord.db.contents["movie"]
        ctype = coord.types.get("mpeg1")
        alloc = coord.admission.place_edge(entry, ctype, proxy.name)
        # The serve's whole span is pinned: the window is rideable the
        # moment the serve *starts*, not only at serve_done.
        placement.begin_serve(
            proxy.name, 900, 901, entry, 0, 48, ctype.bandwidth_rate,
            "prefix", ("b", 1), alloc,
        )
        window = placement.recent[proxy.name]["movie"]
        assert window[0] == 48
        assert window[1] > sim.now
        # A planless client can now ride it as an interval hit.
        placement.edges[proxy.name].pinned.pop("movie")
        plan = placement.plan_prefix(entry, ctype, "b")
        assert plan is not None and plan[2] == "interval"

    def test_unresident_span_waits_for_serve_done(self):
        sim, cluster, coord, placement, proxy = self._pinned()
        entry = coord.db.contents["movie"]
        ctype = coord.types.get("mpeg1")
        alloc = coord.admission.place_edge(entry, ctype, proxy.name)
        # End page beyond the pinned span: nothing is seeded up front...
        placement.begin_serve(
            proxy.name, 900, 901, entry, 0, 60, ctype.bandwidth_rate,
            "interval", ("b", 1), alloc,
        )
        assert "movie" not in placement.recent.get(proxy.name, {})
        # ...and a patch serve never seeds, even when fully resident.
        alloc2 = coord.admission.place_edge(entry, ctype, proxy.name)
        placement.begin_serve(
            proxy.name, 902, 903, entry, 0, 32, ctype.bandwidth_rate,
            "patch", ("b", 1), alloc2,
        )
        assert "movie" not in placement.recent.get(proxy.name, {})
