"""Edge proxy tier: placement loop, zero-disk-cost lane, crash, failover.

The multicast tests already exercise edge-covered patches; everything
here runs with ``multicast=None`` so plays take the plain unicast path
in ``Coordinator._play`` — the only route to the *prefix* serve lane
(an edged multicast play is intercepted by the channel manager first).
"""

import pytest

from repro.core import CalliopeCluster, ClusterConfig
from repro.core.replication import ReplicationManager
from repro.edge import EdgeConfig
from repro.failover import FailoverConfig
from repro.sim import Simulator

from tests.helpers import FAST, SMALL, make_packets, open_client, start_stream

#: Fast enough for test horizons: one play pins the title on the next
#: placement tick (score 1.0 decays to 0.9, above promote at 0.5) and
#: the 48-page fill trickle completes in ~0.1 s.
EDGE = EdgeConfig(
    n_edges=1, prefix_pages=48, placement_period=0.25,
    decay=0.9, promote_score=0.5, evict_score=0.05, report_period=0.25,
)


def build_edged(*, n_msus=1, edge=EDGE, failover=None, length=30.0, seed=3):
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=n_msus, ibtree_config=SMALL, failover=failover,
            multicast=None, edge=edge,
        ),
    )
    cluster.coordinator.db.add_customer("user")
    return sim, cluster, make_packets(length, seed=seed)


class TestEdgeConfig:
    def test_decay_must_stay_below_one(self):
        with pytest.raises(ValueError):
            EdgeConfig(decay=1.0)

    def test_evict_must_stay_below_promote(self):
        with pytest.raises(ValueError):
            EdgeConfig(promote_score=1.0, evict_score=1.0)


class TestPlacementLoop:
    def test_popular_title_is_pinned_then_evicted_when_cold(self):
        sim, cluster, packets = build_edged(
            edge=EdgeConfig(
                n_edges=1, prefix_pages=48, placement_period=0.25,
                decay=0.7, promote_score=0.5, evict_score=0.3,
                report_period=0.25,
            ),
        )
        cluster.load_content("movie", "mpeg1", packets)
        sim.run(until=0.05)
        placement = cluster.coordinator.placement
        proxy = cluster.edges[0]
        placement.note_request("movie")
        # Score 1.0 decays to 0.7 at the first tick — pinned and filled.
        sim.run(until=0.8)
        assert placement.edges[proxy.name].pinned.get("movie", 0) == 48
        assert proxy.pinned_titles() == {"movie": 48}
        assert proxy.pool.used == 48 * EDGE.page_size
        # No further requests: 0.7 -> 0.49 -> 0.343 -> 0.24 <= evict.
        sim.run(until=3.0)
        assert "movie" not in placement.edges[proxy.name].pinned
        assert proxy.pinned_titles() == {}
        assert proxy.pool.used == 0

    def test_hot_titles_sorted_by_decayed_score(self):
        sim, cluster, _ = build_edged()
        placement = cluster.coordinator.placement
        placement.note_request("a")
        placement.note_request("b")
        placement.note_request("b")
        assert placement.hot_titles()[0] == ("b", 2.0)
        placement.decay()
        assert placement.scores["b"] == pytest.approx(1.8)


class TestPrefixServeUnicast:
    def test_second_play_splices_from_the_edge(self):
        sim, cluster, packets = build_edged()
        coord = cluster.coordinator
        placement = coord.placement
        proxy = cluster.edges[0]
        cluster.load_content("movie", "mpeg1", packets)
        sim.run(until=0.05)
        client = open_client(sim, cluster)
        # First play: nothing pinned yet — a plan miss, served MSU-only.
        start_stream(sim, client, "movie", "cold")
        assert placement.prefix_serves == 0
        assert coord.admission.edge_admitted == 0
        # The placement loop pins the now-hot title.
        sim.run(until=sim.now + 1.0)
        assert proxy.pinned_titles() == {"movie": 48}
        view = start_stream(sim, client, "movie", "tv")
        assert placement.prefix_serves == 1
        assert coord.admission.edge_admitted == 1
        # The serve is live: charged against the edge uplink, and the
        # group's books hold only MSU-lane allocations.
        assert placement.edges[proxy.name].uplink_used > 0.0
        assert proxy.uplink_used > 0.0
        group = coord.groups[view.group_id]
        assert all(not a.edge_name for a in group.allocations.values())
        # 48 pages at the MPEG-1 rate take ~4 s; let the serve finish.
        sim.run(until=sim.now + 6.0)
        assert proxy.prefix_bytes_served == 48 * EDGE.page_size
        assert proxy.hits >= 1
        assert placement.serves == {}
        assert placement.edges[proxy.name].uplink_used == pytest.approx(0.0)

    def test_edge_crash_mid_serve_does_not_stall_the_stream(self):
        sim, cluster, packets = build_edged()
        coord = cluster.coordinator
        placement = coord.placement
        cluster.load_content("movie", "mpeg1", packets)
        sim.run(until=0.05)
        client = open_client(sim, cluster)
        start_stream(sim, client, "movie", "cold")
        sim.run(until=sim.now + 1.0)
        view = start_stream(sim, client, "movie", "tv")
        assert placement.prefix_serves == 1
        cluster.fail_edge(0)
        sim.run(until=sim.now + 1.0)
        # The broken control channel told the Coordinator: the serve is
        # refunded, no uplink charge lingers, the pins are gone.
        assert placement.serves == {}
        assert all(
            v.uplink_used == pytest.approx(0.0)
            for v in placement.edges.values()
        )
        assert cluster.edges[0].pinned_titles() == {}
        # The MSU tail stream never depended on the edge: data still flows.
        frozen = client.ports["tv"].stats.packets
        sim.run(until=sim.now + 2.0)
        assert client.ports["tv"].stats.packets > frozen
        assert not view.done_event.triggered


class TestFailoverMissPath:
    def test_backing_msu_death_migrates_without_losing_edge_position(self):
        """The satellite case: a client spliced onto an edge prefix whose
        backing MSU dies mid-stream migrates to the replica via the
        migrator while the edge keeps serving its prefix leg — the
        stream is charged once per leg, never twice."""
        sim, cluster, packets = build_edged(
            n_msus=2, failover=FailoverConfig(heartbeat=FAST),
        )
        coord = cluster.coordinator
        placement = coord.placement
        proxy = cluster.edges[0]
        cluster.load_content("movie", "mpeg1", packets, msu_index=0)
        sim.run(until=0.05)
        client = open_client(sim, cluster)
        warm = start_stream(sim, client, "movie", "warm")
        sim.run(until=sim.now + 1.0)
        assert proxy.pinned_titles() == {"movie": 48}
        view = start_stream(sim, client, "movie", "tv")
        assert coord.groups[view.group_id].msu_name == "msu0"
        serve_key = next(iter(placement.serves))
        assert serve_key[0] == view.group_id
        served_before = proxy.prefix_bytes_served
        # The replica appears only now, so both streams started on msu0
        # and the migrator has somewhere to move them.
        replica_disk = cluster.msus[1].disk_ids()[0]
        ReplicationManager(cluster).replicate("movie", "msu1", replica_disk)

        cluster.hang_msu(0)
        sim.run(until=sim.now + FAST.detection_latency + 1.5)
        # Both groups moved to the replica without a fresh PlayRequest.
        assert coord.groups[view.group_id].msu_name == "msu1"
        assert view.migrations == 1
        assert warm.migrations == 1
        # The edge leg never noticed: the serve record survived the
        # migration under its original ids (the 48-page serve outlives
        # the ~0.8 s detection + resume window) and keeps streaming.
        assert serve_key in placement.serves
        assert placement.serves[serve_key].edge_name == proxy.name
        frozen = client.ports["tv"].stats.packets
        sim.run(until=sim.now + 6.0)
        assert client.ports["tv"].stats.packets > frozen
        # The serve ran to completion from edge memory ...
        assert proxy.prefix_bytes_served >= served_before + 48 * EDGE.page_size
        assert placement.serves == {}
        # ... and nothing is double-charged once the dust settles: the
        # uplink refunded, and the migrated group's books are MSU-lane
        # only (one place_read charge per leg).
        assert placement.edges[proxy.name].uplink_used == pytest.approx(0.0)
        group = coord.groups[view.group_id]
        assert all(not a.edge_name for a in group.allocations.values())
        assert all(a.msu_name == "msu1" for a in group.allocations.values())
