"""RTP and VAT header codecs: real byte-level round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net import RtpHeader, VatHeader


class TestRtp:
    def test_roundtrip(self):
        header = RtpHeader(payload_type=26, sequence=7, timestamp=90_000, ssrc=42,
                           marker=True)
        parsed = RtpHeader.parse(header.pack())
        assert parsed == header

    def test_size_is_twelve_bytes(self):
        assert len(RtpHeader(0, 0, 0, 0).pack()) == 12 == RtpHeader.SIZE

    def test_version_checked(self):
        data = bytearray(RtpHeader(0, 0, 0, 0).pack())
        data[0] = 0x40  # version 1
        with pytest.raises(ProtocolError):
            RtpHeader.parse(bytes(data))

    def test_short_packet_rejected(self):
        with pytest.raises(ProtocolError):
            RtpHeader.parse(b"\x80\x00")

    def test_timestamp_conversion_90khz(self):
        header = RtpHeader(26, 0, timestamp=90_000, ssrc=0)
        assert header.timestamp_us() == 1_000_000

    @given(
        pt=st.integers(0, 127),
        seq=st.integers(0, 0xFFFF),
        ts=st.integers(0, 0xFFFFFFFF),
        ssrc=st.integers(0, 0xFFFFFFFF),
        marker=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, pt, seq, ts, ssrc, marker):
        header = RtpHeader(pt, seq, ts, ssrc, marker)
        assert RtpHeader.parse(header.pack() + b"payload") == header


class TestVat:
    def test_roundtrip(self):
        header = VatHeader(flags=1, audio_format=2, conference=3, timestamp=4000)
        assert VatHeader.parse(header.pack()) == header

    def test_size_is_eight_bytes(self):
        assert len(VatHeader(0, 0, 0, 0).pack()) == 8 == VatHeader.SIZE

    def test_short_packet_rejected(self):
        with pytest.raises(ProtocolError):
            VatHeader.parse(b"\x00")

    def test_timestamp_conversion_8khz(self):
        assert VatHeader(0, 0, 0, timestamp=8_000).timestamp_us() == 1_000_000

    @given(
        flags=st.integers(0, 255),
        fmt=st.integers(0, 255),
        conf=st.integers(0, 0xFFFF),
        ts=st.integers(0, 0xFFFFFFFF),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, flags, fmt, conf, ts):
        header = VatHeader(flags, fmt, conf, ts)
        assert VatHeader.parse(header.pack() + b"x" * 160) == header
