"""Whole-MSU crashes mid-stream: clients notice, recovery works."""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


def build():
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
    cluster.coordinator.db.add_customer("user")
    packets = packetize_cbr(MpegEncoder(seed=1).bitstream(30.0), MPEG1_RATE, 1024)
    cluster.load_content("movie", "mpeg1", packets)
    return sim, cluster, packets


def start_stream(sim, cluster):
    client = Client(sim, cluster, "c0")

    def scenario():
        yield from client.open_session("user")
        yield from client.register_port("tv", "mpeg1")
        view = yield from client.play("movie", "tv")
        yield from client.wait_ready(view)
        return view

    proc = sim.process(scenario())
    view = sim.run_until_event(proc, limit=30.0)
    sim.run(until=sim.now + 2.0)
    return client, view


class TestCrash:
    def test_delivery_stops_dead(self):
        sim, cluster, _ = build()
        client, view = start_stream(sim, cluster)
        cluster.fail_msu(0, crash=True)
        sim.run(until=sim.now + 0.2)
        frozen = client.ports["tv"].stats.packets
        sim.run(until=sim.now + 5.0)
        assert client.ports["tv"].stats.packets == frozen

    def test_client_sees_vcr_channel_break(self):
        sim, cluster, _ = build()
        client, view = start_stream(sim, cluster)
        assert not view.done_event.triggered
        cluster.fail_msu(0, crash=True)
        sim.run(until=sim.now + 0.5)
        assert view.closed
        assert view.done_event.triggered  # the break ends the session

    def test_coordinator_marks_down_and_releases(self):
        sim, cluster, _ = build()
        client, view = start_stream(sim, cluster)
        cluster.fail_msu(0, crash=True)
        sim.run(until=sim.now + 0.5)
        state = cluster.coordinator.db.msus["msu0"]
        assert not state.available
        assert state.delivery_used == 0.0

    def test_reboot_and_replay_from_surviving_disks(self):
        sim, cluster, packets = build()
        client, view = start_stream(sim, cluster)
        mid_packets = client.ports["tv"].stats.packets
        cluster.fail_msu(0, crash=True)
        sim.run(until=sim.now + 0.5)
        cluster.rejoin_msu(0)
        sim.run(until=sim.now + 0.5)

        def replay():
            yield from client.register_port("tv2", "mpeg1")
            view2 = yield from client.play("movie", "tv2")
            yield from client.wait_done(view2)

        proc = sim.process(replay())
        sim.run(until=sim.now + 90.0)
        assert proc.ok
        assert client.ports["tv2"].stats.packets == len(packets)
        assert mid_packets > 0  # the first attempt really was mid-stream

    def test_crash_is_idempotent_with_partition(self):
        sim, cluster, _ = build()
        client, view = start_stream(sim, cluster)
        cluster.fail_msu(0)  # partition first
        sim.run(until=sim.now + 0.2)
        cluster.msus[0].crash()  # then the machine dies too
        sim.run(until=sim.now + 0.2)
        assert not cluster.coordinator.db.msus["msu0"].available
