"""§2.3.2's RTP two-port handling end to end.

During recording the RTP module "interleaves the control messages with
the rest of the data stream before the data is given to the disk process.
On output, the opposite process is performed": stored KIND_CONTROL
records demultiplex back onto the display port's control socket
(data port + 1), while data stays on the data socket.
"""

import pytest

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.net.rtp import RtpHeader
from repro.sim import Simulator
from repro.storage import IBTreeConfig

SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


def session_packets(n_data=60, control_every=10):
    """An RTP session with RTCP-ish reports sprinkled in."""
    packets = []
    for i in range(n_data):
        t = i * 40_000
        header = RtpHeader(28, i, int(t * 90 // 1000), 3)
        packets.append((t, header.pack() + b"frame-data" * 20))
        if i and i % control_every == 0:
            # Unparseable as RTP (version 0) -> classified as control.
            packets.append((t + 1000, b"\x00RTCP-report" + bytes([i])))
    return packets


def record_and_replay(packets):
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
    cluster.coordinator.db.add_customer("user")
    client = Client(sim, cluster, "c0")

    def scenario():
        yield from client.open_session("user")
        yield from client.register_port("cam", "rtp-video")
        rec = yield from client.record("talk", "rtp-video", "cam", 60.0)
        yield from client.wait_ready(rec)
        address = rec.record_addresses()["talk"]
        yield from client.send_stream("cam", address, packets)
        yield sim.timeout(0.2)
        client.quit(rec.group_id)
        yield from client.wait_done(rec)
        yield from client.register_port("tv", "rtp-video", capture_payloads=True)
        view = yield from client.play("talk", "tv")
        yield from client.wait_done(view)

    proc = sim.process(scenario())
    sim.run(until=120.0)
    assert proc.ok
    return client


class TestRtpControlPort:
    def test_control_messages_demultiplex_to_control_socket(self):
        packets = session_packets()
        data = [p for t, p in packets if p[0] >> 6 == 2]
        control = [p for t, p in packets if p[0] >> 6 != 2]
        client = record_and_replay(packets)
        port = client.ports["tv"]
        assert port.stats.packets == len(data)
        assert port.control_stats.packets == len(control)
        # The control socket saw exactly the stored control bytes, in order.
        assert port.control_stats.payloads == control

    def test_data_socket_free_of_control_bytes(self):
        client = record_and_replay(session_packets())
        for payload in client.ports["tv"].stats.payloads:
            RtpHeader.parse(payload)  # every data packet parses as RTP

    def test_rtp_port_registers_control_socket(self):
        sim = Simulator()
        cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
        cluster.coordinator.db.add_customer("user")
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("v", "rtp-video")
            yield from client.register_port("tv", "mpeg1")

        proc = sim.process(scenario())
        sim.run(until=10.0)
        assert proc.ok
        rtp_port = client.ports["v"]
        mpeg_port = client.ports["tv"]
        assert rtp_port.control_socket is not None
        assert rtp_port.control_socket.port == rtp_port.socket.port + 1
        assert mpeg_port.control_socket is None  # raw is single-port

    def test_close_port_releases_both_sockets(self):
        sim = Simulator()
        cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=SMALL))
        cluster.coordinator.db.add_customer("user")
        client = Client(sim, cluster, "c0")

        def scenario():
            yield from client.open_session("user")
            yield from client.register_port("v", "rtp-video")

        proc = sim.process(scenario())
        sim.run(until=10.0)
        assert proc.ok
        data_port = client.ports["v"].socket.port
        client.close_port("v")
        assert client.host.socket_on(data_port) is None
        assert client.host.socket_on(data_port + 1) is None
