"""Volume layouts: span (per-disk) and striped mappings."""

import pytest

from repro.errors import StorageError
from repro.storage import RawDisk, SpanVolume, StripedVolume
from tests.conftest import run_process

BLOCK = 1024


def disks(n, blocks_each=16):
    return [RawDisk(None, capacity=BLOCK * blocks_each) for _ in range(n)]


class TestSpanVolume:
    def test_identity_mapping(self):
        (raw,) = disks(1)
        vol = SpanVolume(raw, BLOCK)
        assert vol.nblocks == 16
        disk, offset = vol.locate(5)
        assert disk is raw and offset == 5 * BLOCK

    def test_roundtrip(self, sim):
        vol = SpanVolume(disks(1)[0], BLOCK)

        def proc():
            yield from vol.write_block(3, b"abc")
            data = yield from vol.read_block(3)
            return data

        assert run_process(sim, proc())[:3] == b"abc"

    def test_bounds(self, sim):
        vol = SpanVolume(disks(1)[0], BLOCK)
        with pytest.raises(StorageError):
            list(vol.read_block(16))
        with pytest.raises(StorageError):
            list(vol.write_block(2, b"x" * (BLOCK + 1)))


class TestStripedVolume:
    def test_round_robin_mapping(self):
        raws = disks(3)
        vol = StripedVolume(raws, BLOCK)
        assert vol.nblocks == 48
        for i in range(9):
            disk, offset = vol.locate(i)
            assert disk is raws[i % 3]
            assert offset == (i // 3) * BLOCK

    def test_consecutive_blocks_on_adjacent_disks(self):
        """§2.3.3: "lay out a file so that consecutive blocks are on
        'adjacent' disks"."""
        raws = disks(2)
        vol = StripedVolume(raws, BLOCK)
        sequence = [vol.disk_of(i) for i in range(6)]
        assert sequence == [raws[0], raws[1], raws[0], raws[1], raws[0], raws[1]]

    def test_roundtrip_across_disks(self, sim):
        vol = StripedVolume(disks(2), BLOCK)

        def proc():
            for i in range(4):
                yield from vol.write_block(i, bytes([i]) * 8)
            out = []
            for i in range(4):
                data = yield from vol.read_block(i)
                out.append(data[0])
            return out

        assert run_process(sim, proc()) == [0, 1, 2, 3]

    def test_sync_paths(self):
        vol = StripedVolume(disks(2), BLOCK)
        vol.write_block_sync(3, b"sync")
        assert vol.read_block_sync(3)[:4] == b"sync"

    def test_capacity_is_min_disk_times_n(self):
        raws = [
            RawDisk(None, capacity=BLOCK * 10),
            RawDisk(None, capacity=BLOCK * 20),
        ]
        vol = StripedVolume(raws, BLOCK)
        assert vol.nblocks == 20  # limited by the smaller disk

    def test_empty_volume_rejected(self):
        with pytest.raises(ValueError):
            StripedVolume([], BLOCK)
