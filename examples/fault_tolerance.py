#!/usr/bin/env python3
"""MSU failure and recovery (§2.2's fault-tolerance story).

"The Coordinator detects when one of the MSUs fails by a break in the TCP
connection ... When an MSU is down, the Coordinator marks it as
unavailable in the scheduling database.  When the MSU becomes available
again, it contacts the Coordinator and is restored."

The example runs a two-MSU installation, crashes one mid-stream, shows
requests for its content parking in the scheduling queue while the other
MSU keeps serving, then rejoins the failed MSU and watches the queue
drain.  A second act goes past the paper: the MSU *hangs* silently (no
TCP break), the heartbeat monitor declares it dead, and the stream it
was serving migrates to a replica mid-play (DESIGN.md §7).

Run:  python examples/fault_tolerance.py
"""

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.core.replication import ReplicationManager
from repro.media import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE


def main():
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=2))
    cluster.coordinator.db.add_customer("ops")
    stream = MpegEncoder(seed=3).bitstream(40.0)
    packets = packetize_cbr(stream, MPEG1_RATE, CBR_PACKET_SIZE)
    cluster.load_content("news", "mpeg1", packets, msu_index=0)
    cluster.load_content("weather", "mpeg1", packets, msu_index=1)

    client = Client(sim, cluster, "ops-desk")
    db = cluster.coordinator.db

    def availability():
        return {name: state.available for name, state in sorted(db.msus.items())}

    def scenario():
        yield from client.open_session("ops")
        yield from client.register_port("tv1", "mpeg1")
        yield from client.register_port("tv2", "mpeg1")

        view = yield from client.play("weather", "tv2")
        yield from client.wait_ready(view)
        print(f"t={sim.now:5.1f}  weather playing from {view.msu_name}")

        print(f"t={sim.now:5.1f}  crashing msu0 ...")
        cluster.fail_msu(0)
        yield sim.timeout(0.5)
        print(f"t={sim.now:5.1f}  coordinator sees: {availability()}")

        print(f"t={sim.now:5.1f}  requesting 'news' (it lives on the dead MSU)")
        news = yield from client.play_with_timeout("news", "tv1", timeout=5.0)
        queue = cluster.coordinator.admission.queue
        print(f"t={sim.now:5.1f}  request {'scheduled' if news else 'parked'}; "
              f"scheduling queue length = {len(queue)}")

        print(f"t={sim.now:5.1f}  msu0 comes back and says hello ...")
        cluster.rejoin_msu(0)
        yield sim.timeout(0.5)
        print(f"t={sim.now:5.1f}  coordinator sees: {availability()}")

        # The parked request was retried on the hello; play again to show
        # service is fully restored.
        news = yield from client.play("news", "tv1")
        yield from client.wait_ready(news)
        print(f"t={sim.now:5.1f}  news playing from {news.msu_name}")
        yield sim.timeout(5.0)

        # -- act two: a silent hang, caught by heartbeats ----------------
        print(f"t={sim.now:5.1f}  replicating 'news' to msu1 ...")
        ReplicationManager(cluster).replicate(
            "news", "msu1", cluster.msus[1].disk_ids()[0]
        )
        print(f"t={sim.now:5.1f}  msu0 hangs silently (no TCP break) ...")
        cluster.hang_msu(0)
        yield sim.timeout(3.0)
        monitor = cluster.coordinator.monitor
        print(f"t={sim.now:5.1f}  heartbeat monitor says msu0 is "
              f"{monitor.state('msu0')!r}; news now playing from "
              f"{news.msu_name} (migrations={news.migrations})")
        yield sim.timeout(2.0)
        client.quit(news.group_id)
        client.quit(view.group_id)

    done = sim.process(scenario())
    sim.run(until=300.0)
    assert done.ok, "scenario failed"
    print(f"weather packets: {client.ports['tv2'].stats.packets}, "
          f"news packets: {client.ports['tv1'].stats.packets}")
    print("queue empty:", len(cluster.coordinator.admission.queue) == 0)


if __name__ == "__main__":
    main()
