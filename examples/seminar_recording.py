#!/usr/bin/env python3
"""Recording an MBone seminar and replaying it with an index.

Reproduces two applications from §2.1: recording MBone presentations
(a composite Seminar = RTP video + VAT audio stream group), and the
seminar-index application — "users can examine the index and skip to the
portion of the seminar that interests them" — implemented with VCR seeks
on the replayed group.

Run:  python examples/seminar_recording.py
"""

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import NvEncoder, VatEncoder
from repro.net import messages as m
from repro.net.rtp import RtpHeader
from repro.net.vat import VatHeader
from repro.sim import Simulator

SEMINAR_SECONDS = 20.0

#: A human-made index of the talk: name -> seconds from the start.
SEMINAR_INDEX = {
    "introduction": 0.0,
    "architecture": 6.0,
    "performance": 12.0,
    "questions": 17.0,
}


def mbone_session(seconds):
    """The live session as it would arrive off the MBone: RTP + VAT."""
    video = []
    for i, packet in enumerate(NvEncoder(seed=21).packets(seconds)):
        header = RtpHeader(
            payload_type=28, sequence=i & 0xFFFF,
            timestamp=int(packet.delivery_us * 90 // 1000), ssrc=0xBEEF,
        )
        video.append((packet.delivery_us, header.pack() + packet.payload))
    audio = []
    for packet in VatEncoder(seed=22).packets(seconds):
        header = VatHeader(0, 1, 42, int(packet.delivery_us * 8 // 1000))
        audio.append((packet.delivery_us, header.pack() + packet.payload))
    return video, audio


def main():
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1))
    cluster.coordinator.db.add_customer("av-team")
    client = Client(sim, cluster, "seminar-room")
    video, audio = mbone_session(SEMINAR_SECONDS)
    print(f"live session: {len(video)} video packets, {len(audio)} audio packets")

    def record_phase():
        yield from client.open_session("av-team")
        yield from client.register_port("cam", "rtp-video")
        yield from client.register_port("mic", "vat-audio")
        yield from client.register_composite_port("room", "seminar", ["cam", "mic"])
        rec = yield from client.record(
            "usenix-talk", "seminar", "room", estimate_seconds=SEMINAR_SECONDS + 10
        )
        yield from client.wait_ready(rec)
        addresses = rec.record_addresses()
        print(f"MSU listening on {sorted(addresses.values())}; streaming the talk ...")
        video_feed = sim.process(
            client.send_stream("cam", addresses["usenix-talk.rtp-video"], video)
        )
        audio_feed = sim.process(
            client.send_stream("mic", addresses["usenix-talk.vat-audio"], audio)
        )
        yield video_feed
        yield audio_feed
        yield sim.timeout(0.5)
        client.quit(rec.group_id)
        yield from client.wait_done(rec)
        print(f"recorded at t={sim.now:.1f}s; unused reservation returned")

    def replay_phase():
        # A later viewer replays the seminar and hops through the index.
        yield from client.register_port("v-out", "rtp-video")
        yield from client.register_port("a-out", "vat-audio")
        yield from client.register_composite_port("desk", "seminar", ["v-out", "a-out"])
        view = yield from client.play("usenix-talk", "desk")
        yield from client.wait_ready(view)
        print(f"replaying as stream group {view.group_id} "
              f"({len(view.ready_streams)} synchronized members)")
        for section, offset in SEMINAR_INDEX.items():
            print(f"  index: jump to {section!r} at {offset:.0f}s")
            client.vcr(view.group_id, m.VCR_SEEK, offset)
            yield sim.timeout(3.0)
        client.quit(view.group_id)

    def scenario():
        yield from record_phase()
        yield from replay_phase()

    done = sim.process(scenario())
    sim.run(until=600.0)
    assert done.ok, "scenario failed"

    stored_video = cluster.coordinator.db.content("usenix-talk.rtp-video")
    stored_audio = cluster.coordinator.db.content("usenix-talk.vat-audio")
    print(f"stored: video {stored_video.blocks} blocks on {stored_video.disk_id}, "
          f"audio {stored_audio.blocks} blocks on {stored_audio.disk_id}")
    print(f"viewer received {client.ports['v-out'].stats.packets} video / "
          f"{client.ports['a-out'].stats.packets} audio packets across the jumps")


if __name__ == "__main__":
    main()
