#!/usr/bin/env python3
"""Quickstart: boot a Calliope installation and play one movie.

Builds the Figure 1 topology (Coordinator + one MSU + both networks),
pre-loads a synthetic MPEG-1 movie through the administrative interface,
then acts as a client: open a session, list the contents, register a
display port, play, and report what arrived.

Run:  python examples/quickstart.py
"""

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE


def main():
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1))
    cluster.coordinator.db.add_customer("alice")

    # Administrator: encode 30 seconds of 1.5 Mbit/s video and load it.
    print("loading content ...")
    movie = MpegEncoder(seed=1).bitstream(30.0)
    packets = packetize_cbr(movie, MPEG1_RATE, CBR_PACKET_SIZE)
    cluster.load_content("big-buck-pentium", "mpeg1", packets)

    client = Client(sim, cluster, "alice-pc")

    def session():
        yield from client.open_session("alice")
        contents = yield from client.list_contents()
        print(f"table of contents: {contents}")
        yield from client.register_port("tv", "mpeg1")
        view = yield from client.play("big-buck-pentium", "tv")
        print(f"scheduled on {view.msu_name}; waiting for the stream ...")
        yield from client.wait_done(view)

    done = sim.process(session())
    sim.run(until=120.0)
    assert done.ok, "session failed"

    stats = client.ports["tv"].stats
    msu = cluster.msus[0]
    print(f"received {stats.packets} packets / {stats.bytes} bytes "
          f"in {stats.last_arrival - stats.first_arrival:.1f}s of stream time")
    collector = msu.iop.collector
    print(f"server-side delivery: {collector.percent_within(50):.1f}% of packets "
          f"within 50 ms of schedule (worst {collector.max_lateness_ms():.1f} ms)")


if __name__ == "__main__":
    main()
