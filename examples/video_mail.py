#!/usr/bin/env python3
"""Video mail: record short messages, list the mailbox, play them back.

The paper's video-mail application (§1, §2.1): each message is a short
recorded stream; the Coordinator's table of contents doubles as the
mailbox listing.  Recording uses a length *estimate*, and Calliope
returns the over-reserved disk space once the message ends (§2.2) — the
example prints the reservation accounting to show it.

Run:  python examples/video_mail.py
"""

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import NvEncoder
from repro.net.rtp import RtpHeader
from repro.sim import Simulator

MESSAGES = [
    ("alice", "re-the-demo", 4.0),
    ("bob", "scsi-bus-woes", 6.0),
    ("alice", "friday-plans", 3.0),
]


def rtp_message(seconds, seed):
    packets = []
    for i, packet in enumerate(NvEncoder(seed=seed).packets(seconds)):
        header = RtpHeader(28, i & 0xFFFF, int(packet.delivery_us * 90 // 1000), seed)
        packets.append((packet.delivery_us, header.pack() + packet.payload))
    return packets


def main():
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1))
    for sender, _, _ in MESSAGES:
        if cluster.coordinator.db.authenticate(sender) is None:
            cluster.coordinator.db.add_customer(sender)

    def leave_message(client, sender, subject, seconds, seed):
        yield from client.open_session(sender)
        yield from client.register_port("cam", "rtp-video")
        name = f"mail.{sender}.{subject}"
        # Senders overestimate: ask for 60 s regardless of actual length.
        rec = yield from client.record(name, "rtp-video", "cam", estimate_seconds=60.0)
        yield from client.wait_ready(rec)
        address = rec.record_addresses()[name]
        yield from client.send_stream("cam", address, rtp_message(seconds, seed))
        yield sim.timeout(0.3)
        client.quit(rec.group_id)
        yield from client.wait_done(rec)
        yield sim.timeout(0.1)  # let the MSU's termination report land
        entry = cluster.coordinator.db.content(name)
        print(f"  {sender} left {subject!r}: {seconds:.0f}s, "
              f"{entry.blocks} blocks on {entry.msu_name}/{entry.disk_id}")
        client.close_session()

    def read_mailbox(client, reader):
        yield from client.open_session(reader)
        listing = yield from client.list_contents()
        mailbox = [name for name, _ in listing if name.startswith("mail.")]
        print(f"  {reader}'s mailbox listing: {mailbox}")
        yield from client.register_port("screen", "rtp-video")
        for name in mailbox:
            view = yield from client.play(name, "screen")
            yield from client.wait_done(view)
            print(f"  {reader} watched {name!r} "
                  f"({client.ports['screen'].stats.packets} packets so far)")

    def scenario():
        print("recording messages:")
        for i, (sender, subject, seconds) in enumerate(MESSAGES):
            mailer = Client(sim, cluster, f"{sender}-phone-{i}")
            yield from leave_message(mailer, sender, subject, seconds, seed=30 + i)
        print("reading the mailbox:")
        reader = Client(sim, cluster, "bob-desktop")
        yield from read_mailbox(reader, "bob")

    done = sim.process(scenario())
    sim.run(until=600.0)
    assert done.ok, "scenario failed"

    # The 60 s estimates were returned: no reservations remain anywhere.
    for msu in cluster.msus:
        for disk_id, fs in msu.filesystems.items():
            assert fs.allocator.reserved_blocks == 0
            print(f"{disk_id}: {fs.allocator.used_blocks} blocks used, "
                  f"{fs.allocator.free_blocks} free, 0 reserved")


if __name__ == "__main__":
    main()
