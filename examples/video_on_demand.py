#!/usr/bin/env python3
"""Video on demand: several viewers, a shared catalog, VCR commands.

Reproduces the paper's primary motivating application (§2.1): clients
browse the table of contents, play movies, pause, seek, and use the
fast-forward scan installed by the administrator's offline filter
(§2.3.1).  Two movies live on the MSU's two disks; three viewers watch
concurrently while one of them channel-surfs with the VCR.

Run:  python examples/video_on_demand.py
"""

from repro.clients import Client
from repro.core import CalliopeCluster, ClusterConfig
from repro.media import MpegEncoder, packetize_cbr
from repro.net import messages as m
from repro.sim import Simulator
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE


def build_catalog(cluster):
    """The administrator loads two movies plus fast-scan companions."""
    for index, title in enumerate(["attack-of-the-eisa-bus", "barracuda-2gb"]):
        stream = MpegEncoder(seed=10 + index).bitstream(60.0)
        packets = packetize_cbr(stream, MPEG1_RATE, CBR_PACKET_SIZE)
        cluster.load_content(title, "mpeg1", packets, disk_index=index % 2)
        cluster.install_fast_scans(
            title, stream, MPEG1_RATE, CBR_PACKET_SIZE, step=15, disk_index=index % 2
        )


def passive_viewer(sim, client, title, watch_seconds):
    """Plays a movie start to finish (or until bedtime)."""
    yield from client.open_session("couch")
    yield from client.register_port("tv", "mpeg1")
    view = yield from client.play(title, "tv")
    yield from client.wait_ready(view)
    yield sim.timeout(watch_seconds)
    client.quit(view.group_id)
    print(f"  {client.name}: watched {watch_seconds:.0f}s of {title!r}, "
          f"{client.ports['tv'].stats.packets} packets")


def channel_surfer(sim, client, title):
    """Pause, resume, seek, fast-forward — the full remote control."""
    yield from client.open_session("couch")
    contents = yield from client.list_contents()
    print(f"  {client.name}: catalog = {[name for name, _ in contents]}")
    yield from client.register_port("tv", "mpeg1")
    view = yield from client.play(title, "tv")
    yield from client.wait_ready(view)
    yield sim.timeout(5.0)
    print(f"  {client.name}: pause at t={sim.now:.1f}")
    client.vcr(view.group_id, m.VCR_PAUSE)
    yield sim.timeout(3.0)
    print(f"  {client.name}: resume")
    client.vcr(view.group_id, m.VCR_PLAY)
    yield sim.timeout(4.0)
    print(f"  {client.name}: seek to 40s")
    client.vcr(view.group_id, m.VCR_SEEK, 40.0)
    yield sim.timeout(4.0)
    print(f"  {client.name}: fast forward")
    client.vcr(view.group_id, m.VCR_FAST_FORWARD)
    yield sim.timeout(3.0)
    print(f"  {client.name}: back to normal speed")
    client.vcr(view.group_id, m.VCR_NORMAL)
    yield sim.timeout(4.0)
    client.quit(view.group_id)
    print(f"  {client.name}: done, {client.ports['tv'].stats.packets} packets")


def main():
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1))
    cluster.coordinator.db.add_customer("couch")
    print("loading catalog ...")
    build_catalog(cluster)

    viewers = [Client(sim, cluster, f"viewer{i}") for i in range(3)]
    print("viewers tuning in:")
    procs = [
        sim.process(passive_viewer(sim, viewers[0], "attack-of-the-eisa-bus", 25.0)),
        sim.process(passive_viewer(sim, viewers[1], "barracuda-2gb", 25.0)),
        sim.process(channel_surfer(sim, viewers[2], "attack-of-the-eisa-bus")),
    ]
    sim.run(until=240.0)
    assert all(p.ok for p in procs), "a viewer failed"

    collector = cluster.msus[0].iop.collector
    print(f"server delivered {len(collector)} packets, "
          f"{collector.percent_within(50):.1f}% within 50 ms of schedule")
    state = cluster.coordinator.db.msus["msu0"]
    print(f"coordinator accounting after quits: "
          f"{state.delivery_used:.0f} B/s allocated, {state.active_streams} streams")


if __name__ == "__main__":
    main()
